// Command spaced serves constructed search spaces over HTTP. Clients
// submit a problem definition once; spaced constructs the space with
// the optimized solver (or any baseline method), caches it under its
// content address, and answers membership, bounds, sampling, and
// neighbor queries from the materialized result — so many clients share
// one construction.
//
//	spaced -addr :8080 -max-spaces 64 -max-bytes 2147483648
//
// Endpoints (see internal/service for request/response shapes):
//
//	POST /v1/spaces                   build or cache-hit; returns id + build stats
//	GET  /v1/spaces/{id}              metadata and true parameter bounds
//	POST /v1/spaces/{id}/contains     O(1) membership tests
//	POST /v1/spaces/{id}/sample       seeded uniform/stratified/LHS sampling
//	POST /v1/spaces/{id}/neighbors    hamming/adjacent neighbors
//	POST /v1/spaces/{id}/sessions     create an ask/tell tuning session
//	POST .../sessions/{sid}/ask       next batch of configurations to measure
//	POST .../sessions/{sid}/tell      report measured scores/costs
//	GET  .../sessions/{sid}/best      best configuration found + trace
//	DEL  .../sessions/{sid}           end the session
//	GET  /v1/methods                  construction methods
//	POST /v1/compare                  race methods on one definition
//	GET  /v1/stats                    request + cache + session metrics
//	GET  /metrics                     Prometheus text exposition
//	GET  /v1/trace/{id}               per-request span breakdown by request ID
//	GET  /v1/trace/recent             most recently finished traces
//	GET  /v1/builds                   in-flight builds/restores with live progress
//	GET  /v1/events                   lifecycle event journal (builds, evictions, sessions)
//	GET  /v1/spaces/{id}/stats        per-space usage and cost attribution
//	GET  /healthz                     liveness
//
// Construction runs on the parallel engine by default: each build
// draws workers from a shared -build-workers pool (a lone build gets
// the whole pool, a burst splits it, so concurrent builds cannot
// oversubscribe the box), and its output is byte-identical to a
// sequential build. A client that disconnects mid-build cancels the
// construction (unless other clients are waiting on the same space);
// the optimized, both chain-of-trees, and brute-force methods stop
// mid-build, the other baselines before starting (their input size is
// admission-bounded). SIGINT/SIGTERM drain in-flight requests before
// exit.
//
// With -store-dir set, built spaces also live in an on-disk snapshot
// tier: completed builds are written through, LRU eviction demotes to
// disk instead of discarding, queries on a demoted space restore it
// transparently, and a restarted daemon warm-starts from the blobs —
// re-submitting a previously built definition is a cache hit with zero
// new solver work.
//
//	spaced -addr :8080 -store-dir /var/lib/spaced -store-max-bytes 34359738368
//
// Every response carries an X-Request-ID header (client-supplied or
// generated). With -trace-buffer > 0 (the default), each request also
// records a span breakdown — queue wait, admission, build, store
// write-through, encode — retrievable at /v1/trace/{id} while it stays
// in the ring. -slow-ms logs any request slower than the threshold
// with its slowest span, and -log-format json switches the structured
// log to machine-readable output for collectors.
//
// The operations plane rides on the same rings: GET /v1/builds lists
// every in-flight construction and restore with live done/total task
// progress, node counts, waiter counts, and ETA; with -event-buffer
// > 0 (the default) a bounded journal records lifecycle events —
// build start/finish/cancel, admission and busy rejections, evictions,
// demotions, restores, quarantines, session churn — at GET /v1/events;
// and GET /v1/spaces/{id}/stats attributes queries, batch rows, build
// time, and resident bytes to each space. `spacecli top` renders all
// three as a polling terminal view.
//
// With -pprof set, a net/http/pprof listener runs on its own address
// (never the public one) so hot-path regressions are diagnosable
// against a live daemon; see the README's "Solver hot path" section
// for a capture recipe.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	// Registers the profiling handlers on http.DefaultServeMux, which is
	// served ONLY on the optional -pprof listener — the main service
	// handler is a dedicated mux, so profiling is never exposed on the
	// public address.
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"searchspace/internal/obs"
	"searchspace/internal/service"
	"searchspace/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxSpaces := flag.Int("max-spaces", 128, "max cached spaces (0 = unlimited)")
	maxBytes := flag.Int64("max-bytes", 4<<30, "max estimated bytes of cached spaces (0 = unlimited)")
	maxCartesian := flag.Float64("max-cartesian", 1e12, "reject definitions whose unconstrained size exceeds this before building (0 = unlimited)")
	maxExhaustive := flag.Float64("max-exhaustive-cartesian", 1e8, "tighter pre-build limit for exhaustive methods (brute-force, original, iterative-sat; 0 = unlimited)")
	maxBuilds := flag.Int("max-builds", 4, "max concurrent constructions; excess builds queue (0 = unlimited)")
	buildWorkers := flag.Int("build-workers", 0, "total solver workers shared by concurrent constructions; a lone build gets the whole pool, a burst splits it (0 = GOMAXPROCS)")
	maxSessions := flag.Int("max-sessions", 4096, "max live tuning sessions; least recently used beyond this are evicted (0 = unlimited)")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "idle tuning sessions expire after this (0 = never)")
	storeDir := flag.String("store-dir", "", "directory for the on-disk snapshot tier; built spaces are written through and survive eviction and restarts (empty = persistence off)")
	storeMaxBytes := flag.Int64("store-max-bytes", 32<<30, "max bytes of snapshot blobs in -store-dir; least recently used beyond this are garbage-collected (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
	pprofAddr := flag.String("pprof", "", "optional net/http/pprof listen address (e.g. 127.0.0.1:6060) for diagnosing hot-path regressions against a live daemon; empty = off")
	traceBuffer := flag.Int("trace-buffer", 512, "finished request traces kept for /v1/trace/{id} (0 = tracing off)")
	eventBuffer := flag.Int("event-buffer", 1024, "lifecycle events kept for /v1/events — build start/finish/cancel, evict, demote, restore, quarantine, session churn (0 = journaling off)")
	slowMs := flag.Int("slow-ms", 0, "log requests slower than this many milliseconds with their slowest span (0 = off)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	flag.Parse()

	if *logFormat != "text" && *logFormat != "json" {
		slog.Error("spaced: -log-format must be text or json", "got", *logFormat)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
	// Library layers (the snapshot store's quarantine warning, for one)
	// log through the process default; route them to the same handler.
	slog.SetDefault(logger)

	if *pprofAddr != "" {
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr,
				"cpu_profile", "go tool pprof http://"+*pprofAddr+"/debug/pprof/profile?seconds=10")
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof listener", "err", err)
			}
		}()
	}

	var blobs *store.Store
	if *storeDir != "" {
		var err error
		blobs, err = store.Open(store.Config{Dir: *storeDir, MaxBytes: *storeMaxBytes})
		if err != nil {
			logger.Error("snapshot store open failed", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
		st := blobs.Stats()
		// Warm start: every scanned blob is a space the next build of
		// that definition gets as a cache hit without rebuilding.
		logger.Info("snapshot store warm start", "dir", *storeDir, "snapshots", st.Blobs, "bytes", st.Bytes)
	}

	reg := service.NewRegistry(service.RegistryConfig{
		MaxEntries: *maxSpaces, MaxBytes: *maxBytes,
		MaxCartesian: *maxCartesian, MaxExhaustiveCartesian: *maxExhaustive,
		MaxConcurrentBuilds: *maxBuilds,
		BuildWorkers:        *buildWorkers,
		Store:               blobs,
	})
	srv := service.NewServerObs(reg, service.SessionConfig{
		MaxSessions: *maxSessions, TTL: *sessionTTL,
	}, service.ObsConfig{
		TraceBuffer:   *traceBuffer,
		EventBuffer:   *eventBuffer,
		SlowThreshold: time.Duration(*slowMs) * time.Millisecond,
		Logger:        logger,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("spaced listening", "addr", *addr,
			"max_spaces", *maxSpaces, "max_bytes", *maxBytes,
			"trace_buffer", *traceBuffer, "slow_ms", *slowMs)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errCh:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "deadline", drainTimeout.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "err", err)
	}
	logger.Info("final cache state", "cache", reg.Stats().String())
	if blobs != nil {
		logger.Info("final store state", "store", blobs.Stats().String())
	}
	st := srv.Sessions().Stats()
	logger.Info("final session state",
		"active", st.Active, "created", st.Created,
		"expired_ttl", st.ExpiredTTL, "evicted_lru", st.EvictedLRU,
		"deleted", st.Deleted, "dehydrated", st.Dehydrated, "rehydrated", st.Rehydrated)
}
