// Command spaced serves constructed search spaces over HTTP. Clients
// submit a problem definition once; spaced constructs the space with
// the optimized solver (or any baseline method), caches it under its
// content address, and answers membership, bounds, sampling, and
// neighbor queries from the materialized result — so many clients share
// one construction.
//
//	spaced -addr :8080 -max-spaces 64 -max-bytes 2147483648
//
// Endpoints (see internal/service for request/response shapes):
//
//	POST /v1/spaces                   build or cache-hit; returns id + build stats
//	GET  /v1/spaces/{id}              metadata and true parameter bounds
//	POST /v1/spaces/{id}/contains     O(1) membership tests
//	POST /v1/spaces/{id}/sample       seeded uniform/stratified/LHS sampling
//	POST /v1/spaces/{id}/neighbors    hamming/adjacent neighbors
//	POST /v1/spaces/{id}/sessions     create an ask/tell tuning session
//	POST .../sessions/{sid}/ask       next batch of configurations to measure
//	POST .../sessions/{sid}/tell      report measured scores/costs
//	GET  .../sessions/{sid}/best      best configuration found + trace
//	DEL  .../sessions/{sid}           end the session
//	GET  /v1/methods                  construction methods
//	POST /v1/compare                  race methods on one definition
//	GET  /v1/stats                    request + cache + session metrics
//	GET  /healthz                     liveness
//
// Construction runs on the parallel engine by default: each build
// draws workers from a shared -build-workers pool (a lone build gets
// the whole pool, a burst splits it, so concurrent builds cannot
// oversubscribe the box), and its output is byte-identical to a
// sequential build. A client that disconnects mid-build cancels the
// construction (unless other clients are waiting on the same space);
// the optimized, both chain-of-trees, and brute-force methods stop
// mid-build, the other baselines before starting (their input size is
// admission-bounded). SIGINT/SIGTERM drain in-flight requests before
// exit.
//
// With -store-dir set, built spaces also live in an on-disk snapshot
// tier: completed builds are written through, LRU eviction demotes to
// disk instead of discarding, queries on a demoted space restore it
// transparently, and a restarted daemon warm-starts from the blobs —
// re-submitting a previously built definition is a cache hit with zero
// new solver work.
//
//	spaced -addr :8080 -store-dir /var/lib/spaced -store-max-bytes 34359738368
//
// With -pprof set, a net/http/pprof listener runs on its own address
// (never the public one) so hot-path regressions are diagnosable
// against a live daemon; see the README's "Solver hot path" section
// for a capture recipe.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	// Registers the profiling handlers on http.DefaultServeMux, which is
	// served ONLY on the optional -pprof listener — the main service
	// handler is a dedicated mux, so profiling is never exposed on the
	// public address.
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"searchspace/internal/service"
	"searchspace/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxSpaces := flag.Int("max-spaces", 128, "max cached spaces (0 = unlimited)")
	maxBytes := flag.Int64("max-bytes", 4<<30, "max estimated bytes of cached spaces (0 = unlimited)")
	maxCartesian := flag.Float64("max-cartesian", 1e12, "reject definitions whose unconstrained size exceeds this before building (0 = unlimited)")
	maxExhaustive := flag.Float64("max-exhaustive-cartesian", 1e8, "tighter pre-build limit for exhaustive methods (brute-force, original, iterative-sat; 0 = unlimited)")
	maxBuilds := flag.Int("max-builds", 4, "max concurrent constructions; excess builds queue (0 = unlimited)")
	buildWorkers := flag.Int("build-workers", 0, "total solver workers shared by concurrent constructions; a lone build gets the whole pool, a burst splits it (0 = GOMAXPROCS)")
	maxSessions := flag.Int("max-sessions", 4096, "max live tuning sessions; least recently used beyond this are evicted (0 = unlimited)")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "idle tuning sessions expire after this (0 = never)")
	storeDir := flag.String("store-dir", "", "directory for the on-disk snapshot tier; built spaces are written through and survive eviction and restarts (empty = persistence off)")
	storeMaxBytes := flag.Int64("store-max-bytes", 32<<30, "max bytes of snapshot blobs in -store-dir; least recently used beyond this are garbage-collected (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
	pprofAddr := flag.String("pprof", "", "optional net/http/pprof listen address (e.g. 127.0.0.1:6060) for diagnosing hot-path regressions against a live daemon; empty = off")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			log.Printf("spaced: pprof listening on %s (CPU profile: go tool pprof http://%s/debug/pprof/profile?seconds=10)", *pprofAddr, *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("spaced: pprof listener: %v", err)
			}
		}()
	}

	var blobs *store.Store
	if *storeDir != "" {
		var err error
		blobs, err = store.Open(store.Config{Dir: *storeDir, MaxBytes: *storeMaxBytes})
		if err != nil {
			log.Fatalf("spaced: snapshot store: %v", err)
		}
		st := blobs.Stats()
		// Warm start: every scanned blob is a space the next build of
		// that definition gets as a cache hit without rebuilding.
		log.Printf("spaced: snapshot store %s: warm start with %d snapshot(s), %d bytes", *storeDir, st.Blobs, st.Bytes)
	}

	reg := service.NewRegistry(service.RegistryConfig{
		MaxEntries: *maxSpaces, MaxBytes: *maxBytes,
		MaxCartesian: *maxCartesian, MaxExhaustiveCartesian: *maxExhaustive,
		MaxConcurrentBuilds: *maxBuilds,
		BuildWorkers:        *buildWorkers,
		Store:               blobs,
	})
	srv := service.NewServerWith(reg, service.SessionConfig{
		MaxSessions: *maxSessions, TTL: *sessionTTL,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("spaced listening on %s (max-spaces=%d max-bytes=%d)", *addr, *maxSpaces, *maxBytes)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errCh:
		log.Fatalf("spaced: %v", err)
	case sig := <-sigCh:
		log.Printf("spaced: %v, draining (deadline %s)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("spaced: shutdown: %v", err)
	}
	log.Printf("spaced: final cache state: %s", reg.Stats())
	if blobs != nil {
		log.Printf("spaced: final store state: %s", blobs.Stats())
	}
	st := srv.Sessions().Stats()
	log.Printf("spaced: final session state: active=%d created=%d expired_ttl=%d evicted_lru=%d deleted=%d dehydrated=%d rehydrated=%d",
		st.Active, st.Created, st.ExpiredTTL, st.EvictedLRU, st.Deleted, st.Dehydrated, st.Rehydrated)
}
