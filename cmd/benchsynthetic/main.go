// Command benchsynthetic regenerates the synthetic-suite figures:
//
//	benchsynthetic -figure 2   — distribution of the 78 synthetic spaces'
//	                             characteristics (Figure 2)
//	benchsynthetic -figure 3   — construction time per method with
//	                             log-log slopes, KDE and totals (Figure 3)
//	benchsynthetic -figure 4   — blocking-clause (PySMT-style) solver on
//	                             the reduced suite (Figure 4)
//
// -spaces N restricts the suite to its first N spaces for quick runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"searchspace/internal/harness"
	"searchspace/internal/model"
	"searchspace/internal/report"
	"searchspace/internal/stats"
	"searchspace/internal/workloads"
)

func main() {
	figure := flag.Int("figure", 3, "figure to regenerate (2, 3 or 4)")
	nspaces := flag.Int("spaces", 0, "restrict to the first N synthetic spaces (0 = all 78)")
	flag.Parse()

	limit := func(defs []*model.Definition) []*model.Definition {
		if *nspaces > 0 && *nspaces < len(defs) {
			return defs[:*nspaces]
		}
		return defs
	}

	switch *figure {
	case 2:
		figure2(limit(workloads.SyntheticSuite()))
	case 3:
		figure3(limit(workloads.SyntheticSuite()))
	case 4:
		figure4(limit(workloads.SyntheticReducedSuite()))
	default:
		fmt.Fprintln(os.Stderr, "unknown figure; use -figure 2, 3 or 4")
		os.Exit(2)
	}
}

func figure2(defs []*model.Definition) {
	data, err := harness.ComputeFig2(defs)
	if err != nil {
		log.Fatal(err)
	}
	cart, valid, sparsity := data.Summaries()
	fmt.Printf("Figure 2: density of three characteristics of the %d synthetic search spaces\n\n", len(defs))
	rows := [][]string{
		summaryRow("A: Cartesian size", cart),
		summaryRow("B: valid configurations", valid),
		summaryRow("C: fraction constrained", sparsity),
	}
	fmt.Print(report.Table([]string{"Characteristic", "min", "Q1", "median", "Q3", "max", "mean"}, rows))
	fmt.Println("\nKDE of log10(valid configurations):")
	printKDE(logs(data.Valid))
	fmt.Println("\nKDE of fraction constrained:")
	printKDE(data.Sparsity)
}

func summaryRow(name string, s stats.Summary) []string {
	return []string{
		name,
		fmt.Sprintf("%.4g", s.Min), fmt.Sprintf("%.4g", s.Q1),
		fmt.Sprintf("%.4g", s.Median), fmt.Sprintf("%.4g", s.Q3),
		fmt.Sprintf("%.4g", s.Max), fmt.Sprintf("%.4g", s.Mean),
	}
}

func logs(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			out = append(out, math.Log10(x))
		}
	}
	return out
}

func printKDE(sample []float64) {
	s := stats.Summarize(sample)
	at := stats.Linspace(s.Min, s.Max, 40)
	dens := stats.KDE(sample, at)
	fmt.Printf("  [%.3g .. %.3g] %s\n", s.Min, s.Max, report.Sparkline(dens))
}

func figure3(defs []*model.Definition) {
	methods := harness.Fig3Methods()
	timings, err := harness.RunSuite(defs, methods, harness.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 3: search space construction on %d synthetic spaces\n\n", len(defs))
	printMethodComparison(timings, methods, harness.Optimized)
}

func figure4(defs []*model.Definition) {
	methods := harness.Fig4Methods()
	// Figure 4 runs the blocking-clause solver for real (the suite is
	// already reduced 10x), but still caps the largest spaces so the
	// figure regenerates in minutes, as the paper notes its own runs
	// took up to a thousand seconds.
	opt := harness.DefaultOptions()
	opt.IterCap = 4000
	timings, err := harness.RunSuite(defs, methods, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 4: blocking-clause enumeration on %d reduced synthetic spaces\n\n", len(defs))
	printMethodComparison(timings, methods, harness.Optimized)
}

// printMethodComparison prints the per-method log-log fit (Figure A
// panels), the KDE of times (B panels), and the totals bar chart (C/F
// panels) shared by Figures 3, 4 and 5.
func printMethodComparison(timings []harness.Timing, methods []harness.Method, ref harness.Method) {
	fmt.Println("log-log regression of construction time on valid configurations:")
	var rows [][]string
	for _, m := range methods {
		fit, err := harness.FitMethod(timings, m)
		if err != nil {
			rows = append(rows, []string{m.String(), "n/a", "", "", ""})
			continue
		}
		rows = append(rows, []string{
			m.String(),
			fmt.Sprintf("%.3f", fit.Slope),
			fmt.Sprintf("%.3f", fit.R2),
			fmt.Sprintf("%.2g", fit.PValue),
			fmt.Sprintf("%d", fit.N),
		})
	}
	fmt.Print(report.Table([]string{"Method", "slope", "R²", "p-value", "n"}, rows))

	fmt.Println("\nKDE of log10(construction seconds) per method:")
	for _, m := range methods {
		_, ys := harness.MethodSeries(timings, m)
		ls := logs(ys)
		if len(ls) == 0 {
			continue
		}
		s := stats.Summarize(ls)
		at := stats.Linspace(s.Min, s.Max, 32)
		fmt.Printf("  %-32s [%s .. %s] %s\n", m,
			report.Seconds(math.Pow(10, s.Min)), report.Seconds(math.Pow(10, s.Max)),
			report.Sparkline(stats.KDE(ls, at)))
	}

	fmt.Println("\ntotal construction time over the suite:")
	refTotal := harness.Total(timings, ref)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, m := range methods {
		t := harness.Total(timings, m)
		lo, hi = math.Min(lo, t), math.Max(hi, t)
	}
	rows = nil
	for _, m := range methods {
		t := harness.Total(timings, m)
		speedup := t / refTotal
		note := ""
		for _, tm := range timings {
			if tm.Method == m && tm.Estimated {
				note = "(includes extrapolated entries)"
				break
			}
		}
		rows = append(rows, []string{
			m.String(), report.Seconds(t),
			fmt.Sprintf("%.1fx", speedup),
			report.Bar(t, lo, hi, 40) + " " + note,
		})
	}
	fmt.Print(report.Table([]string{"Method", "total", "vs optimized", ""}, rows))

	// Crossover extrapolations, as in §5.2.2.
	if refFit, err := harness.FitMethod(timings, ref); err == nil {
		for _, m := range methods {
			if m == ref {
				continue
			}
			if fit, err := harness.FitMethod(timings, m); err == nil {
				if x, ok := stats.CrossoverX(refFit, fit); ok && fit.Slope < refFit.Slope && x > 1 {
					fmt.Printf("\nextrapolated: %s would overtake optimized at ~%.3g valid configurations\n", m, x)
				}
			}
		}
	}
}
