package main

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"searchspace/internal/obs"
	"searchspace/internal/service"
)

// runObsBench measures what request tracing costs on the cheapest path
// the daemon has — the in-process cache hit, where the observability
// span bookkeeping is the largest fraction of total work. Two identical
// in-process servers differ only in ObsConfig: one records traces into
// a ring, the other has tracing disabled. Both are warmed with one
// build, then hammered with cache-hit submits; the best-of-reps
// throughputs are compared. The run fails (nonzero "failures") if
// tracing costs 5% or more, or if the functional checks — X-Request-ID
// issued, the trace resolvable by that ID, /v1/trace/recent and
// /metrics populated — do not hold.
func runObsBench(reps, requests, workers int) map[string]any {
	body := []byte(`{"problem": {
		"name": "obs-bench",
		"params": [
			{"name": "block_size_x", "values": [1, 2, 4, 8, 16, 32, 64]},
			{"name": "block_size_y", "values": [1, 2, 4, 8, 16]},
			{"name": "tile", "values": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]}
		],
		"constraints": ["block_size_x * block_size_y <= 32", "tile <= block_size_x"]
	}}`)

	newObsServer := func(traceBuffer int) *httptest.Server {
		reg := service.NewRegistry(service.RegistryConfig{MaxEntries: 64})
		return httptest.NewServer(service.NewServerObs(reg, service.SessionConfig{},
			service.ObsConfig{TraceBuffer: traceBuffer}))
	}
	traced := newObsServer(512)
	defer traced.Close()
	untraced := newObsServer(0)
	defer untraced.Close()

	client := &http.Client{Timeout: time.Minute}
	var failures int64

	// Warm both servers so every measured request is a cache hit, and
	// capture the request ID of the traced cold build for the
	// functional checks below.
	coldID, ok := submitCapturingID(client, traced.URL, body)
	if !ok || coldID == "" {
		log.Printf("obs: traced warm-up build failed or carried no X-Request-ID")
		failures++
	}
	if _, ok := submitCapturingID(client, untraced.URL, body); !ok {
		log.Printf("obs: untraced warm-up build failed")
		failures++
	}

	// Functional checks run before the hammer: the cold build's trace
	// must still be resolvable, and the hammer's thousands of hits
	// would rotate it out of the ring.
	checks := map[string]bool{}

	raw, ok := getRaw(client, traced.URL+"/v1/trace/"+coldID)
	var coldTrace obs.Trace
	checks["cold_build_trace_resolves"] = ok && json.Unmarshal(raw, &coldTrace) == nil &&
		coldTrace.ID == coldID && len(coldTrace.Spans) > 0
	hasBuildSpan := false
	for _, sp := range coldTrace.Spans {
		if sp.Name == "build" {
			hasBuildSpan = true
		}
	}
	checks["cold_build_trace_has_build_span"] = hasBuildSpan

	raw, ok = getRaw(client, traced.URL+"/v1/trace/recent?n=5")
	var recent service.TraceRecentResponse
	checks["recent_traces_populated"] = ok && json.Unmarshal(raw, &recent) == nil && len(recent.Traces) > 0

	raw, ok = getRaw(client, traced.URL+"/metrics")
	checks["metrics_exposition_serves"] = ok &&
		bytes.Contains(raw, []byte("spaced_http_requests_total")) &&
		bytes.Contains(raw, []byte("spaced_trace_ring_capacity"))

	// The untraced server must keep the request-ID contract (the header
	// is issued regardless) while refusing trace lookups.
	offID, ok := submitCapturingID(client, untraced.URL, body)
	checks["untraced_still_issues_request_id"] = ok && offID != ""
	resp, err := client.Get(untraced.URL + "/v1/trace/" + offID)
	if err == nil {
		resp.Body.Close()
	}
	checks["untraced_trace_endpoint_404s"] = err == nil && resp.StatusCode == http.StatusNotFound

	for name, passed := range checks {
		if !passed {
			log.Printf("obs: functional check failed: %s", name)
			failures++
		}
	}

	hammer := func(base string, n int) (float64, int64) {
		var bad atomic.Int64
		per := n / workers
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, ok := submitCapturingID(client, base, body); !ok {
						bad.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		return float64(per*workers) / elapsed.Seconds(), bad.Load()
	}

	// One unmeasured round on each side first — the runtime's first
	// contact with a workload (connection pool growth, GC sizing,
	// scheduler warm-up) must not be billed to whichever configuration
	// happens to run first.
	_, bad := hammer(traced.URL, requests/4+workers)
	failures += bad
	_, bad = hammer(untraced.URL, requests/4+workers)
	failures += bad

	// Best-of-reps on each side, alternating so ambient load (GC, CPU
	// frequency drift) hits both configurations alike.
	var bestOn, bestOff float64
	for r := 0; r < reps; r++ {
		thr, bad := hammer(traced.URL, requests)
		failures += bad
		if thr > bestOn {
			bestOn = thr
		}
		thr, bad = hammer(untraced.URL, requests)
		failures += bad
		if thr > bestOff {
			bestOff = thr
		}
	}
	overhead := 1 - bestOn/bestOff
	if overhead < 0 {
		// Tracing measured faster than not tracing: noise, not a
		// speedup. Report zero rather than a negative cost.
		overhead = 0
	}
	if overhead >= 0.05 {
		log.Printf("obs: tracing overhead %.2f%% exceeds the 5%% budget (on=%.0f req/s off=%.0f req/s)",
			100*overhead, bestOn, bestOff)
		failures++
	}

	return map[string]any{
		"mode":                 "obs",
		"requests_per_config":  (requests / workers) * workers,
		"workers":              workers,
		"reps":                 reps,
		"hit_throughput_rps":   map[string]any{"tracing_on": bestOn, "tracing_off": bestOff},
		"tracing_overhead_pct": 100 * overhead,
		"overhead_budget_pct":  5.0,
		"checks":               checks,
		"failures":             failures,
	}
}

// submitCapturingID posts a build request and returns the X-Request-ID
// the response carried.
func submitCapturingID(client *http.Client, base string, body []byte) (string, bool) {
	resp, err := client.Post(base+"/v1/spaces", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	var out service.BuildResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || resp.StatusCode != http.StatusOK {
		return id, false
	}
	return id, out.ID != ""
}
