package main

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"searchspace/internal/obs"
	"searchspace/internal/service"
)

// runObsBench measures what the observability planes cost on the
// cheapest path the daemon has — the in-process cache hit, where the
// bookkeeping is the largest fraction of total work. Three identical
// in-process servers differ only in ObsConfig: one runs the full plane
// (trace ring + lifecycle event journal), one traces but does not
// journal, one records nothing. All are warmed with one build, then
// hammered with cache-hit submits; the best-of-reps throughputs are
// compared pairwise, isolating the tracing cost (trace-only vs off)
// from the journal + attribution cost (full vs trace-only). The run
// fails (nonzero "failures") if either plane costs 5% or more, or if
// the functional checks — X-Request-ID issued, the trace resolvable by
// that ID, the build_finish event cross-linked to that request,
// /v1/builds and the per-space stats serving, /metrics populated — do
// not hold.
func runObsBench(reps, requests, workers int) map[string]any {
	body := []byte(`{"problem": {
		"name": "obs-bench",
		"params": [
			{"name": "block_size_x", "values": [1, 2, 4, 8, 16, 32, 64]},
			{"name": "block_size_y", "values": [1, 2, 4, 8, 16]},
			{"name": "tile", "values": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]}
		],
		"constraints": ["block_size_x * block_size_y <= 32", "tile <= block_size_x"]
	}}`)

	newObsServer := func(traceBuffer, eventBuffer int) *httptest.Server {
		reg := service.NewRegistry(service.RegistryConfig{MaxEntries: 64})
		return httptest.NewServer(service.NewServerObs(reg, service.SessionConfig{},
			service.ObsConfig{TraceBuffer: traceBuffer, EventBuffer: eventBuffer}))
	}
	full := newObsServer(512, 1024)
	defer full.Close()
	traced := newObsServer(512, 0)
	defer traced.Close()
	untraced := newObsServer(0, 0)
	defer untraced.Close()

	client := &http.Client{Timeout: time.Minute}
	var failures int64

	// Warm both servers so every measured request is a cache hit, and
	// capture the request ID of the traced cold build for the
	// functional checks below.
	coldID, coldSpace, ok := submitCapturingID(client, full.URL, body)
	if !ok || coldID == "" {
		log.Printf("obs: full-plane warm-up build failed or carried no X-Request-ID")
		failures++
	}
	if _, _, ok := submitCapturingID(client, traced.URL, body); !ok {
		log.Printf("obs: trace-only warm-up build failed")
		failures++
	}
	if _, _, ok := submitCapturingID(client, untraced.URL, body); !ok {
		log.Printf("obs: untraced warm-up build failed")
		failures++
	}

	// Functional checks run before the hammer: the cold build's trace
	// must still be resolvable, and the hammer's thousands of hits
	// would rotate it out of the ring.
	checks := map[string]bool{}

	raw, ok := getRaw(client, full.URL+"/v1/trace/"+coldID)
	var coldTrace obs.Trace
	checks["cold_build_trace_resolves"] = ok && json.Unmarshal(raw, &coldTrace) == nil &&
		coldTrace.ID == coldID && len(coldTrace.Spans) > 0
	hasBuildSpan := false
	for _, sp := range coldTrace.Spans {
		if sp.Name == "build" {
			hasBuildSpan = true
		}
	}
	checks["cold_build_trace_has_build_span"] = hasBuildSpan

	raw, ok = getRaw(client, full.URL+"/v1/trace/recent?n=5")
	var recent service.TraceRecentResponse
	checks["recent_traces_populated"] = ok && json.Unmarshal(raw, &recent) == nil && len(recent.Traces) > 0

	raw, ok = getRaw(client, full.URL+"/metrics")
	checks["metrics_exposition_serves"] = ok &&
		bytes.Contains(raw, []byte("spaced_http_requests_total")) &&
		bytes.Contains(raw, []byte("spaced_trace_ring_capacity"))
	checks["metrics_has_ops_families"] = ok &&
		bytes.Contains(raw, []byte("spaced_lifecycle_events_total")) &&
		bytes.Contains(raw, []byte("spaced_http_inflight_requests")) &&
		bytes.Contains(raw, []byte("go_goroutines"))

	// The operations plane: the cold build left a build_finish event
	// cross-linked to its request id, the in-flight table serves (idle
	// by now), and the space has an attribution row.
	raw, ok = getRaw(client, full.URL+"/v1/events?type=build_finish")
	var events service.EventsResponse
	finishLinked := false
	if ok && json.Unmarshal(raw, &events) == nil {
		for _, e := range events.Events {
			if e.RequestID == coldID && e.SpaceID == coldSpace {
				finishLinked = true
			}
		}
	}
	checks["build_finish_event_links_request"] = finishLinked

	raw, ok = getRaw(client, full.URL+"/v1/builds")
	var builds service.BuildsResponse
	checks["builds_endpoint_serves"] = ok && json.Unmarshal(raw, &builds) == nil

	raw, ok = getRaw(client, full.URL+"/v1/spaces/"+coldSpace+"/stats")
	var usage service.SpaceUsageDoc
	checks["space_stats_attributes_build"] = ok && json.Unmarshal(raw, &usage) == nil &&
		usage.Builds >= 1 && usage.BuildNanos > 0

	// Journaling off must 404 the events endpoint while everything else
	// keeps working.
	respEv, errEv := client.Get(traced.URL + "/v1/events")
	if errEv == nil {
		respEv.Body.Close()
	}
	checks["events_endpoint_404s_when_disabled"] = errEv == nil && respEv.StatusCode == http.StatusNotFound

	// The untraced server must keep the request-ID contract (the header
	// is issued regardless) while refusing trace lookups.
	offID, _, ok := submitCapturingID(client, untraced.URL, body)
	checks["untraced_still_issues_request_id"] = ok && offID != ""
	resp, err := client.Get(untraced.URL + "/v1/trace/" + offID)
	if err == nil {
		resp.Body.Close()
	}
	checks["untraced_trace_endpoint_404s"] = err == nil && resp.StatusCode == http.StatusNotFound

	for name, passed := range checks {
		if !passed {
			log.Printf("obs: functional check failed: %s", name)
			failures++
		}
	}

	hammer := func(base string, n int) (float64, int64) {
		var bad atomic.Int64
		per := n / workers
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, _, ok := submitCapturingID(client, base, body); !ok {
						bad.Add(1)
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		return float64(per*workers) / elapsed.Seconds(), bad.Load()
	}

	// One unmeasured round on each side first — the runtime's first
	// contact with a workload (connection pool growth, GC sizing,
	// scheduler warm-up) must not be billed to whichever configuration
	// happens to run first.
	_, bad := hammer(full.URL, requests/4+workers)
	failures += bad
	_, bad = hammer(traced.URL, requests/4+workers)
	failures += bad
	_, bad = hammer(untraced.URL, requests/4+workers)
	failures += bad

	// Best-of-reps on each side, alternating so ambient load (GC, CPU
	// frequency drift) hits all configurations alike.
	var bestFull, bestOn, bestOff float64
	for r := 0; r < reps; r++ {
		thr, bad := hammer(full.URL, requests)
		failures += bad
		if thr > bestFull {
			bestFull = thr
		}
		thr, bad = hammer(traced.URL, requests)
		failures += bad
		if thr > bestOn {
			bestOn = thr
		}
		thr, bad = hammer(untraced.URL, requests)
		failures += bad
		if thr > bestOff {
			bestOff = thr
		}
	}
	clampPct := func(x float64) float64 {
		// A plane measured faster than its baseline is noise, not a
		// speedup. Report zero rather than a negative cost.
		if x < 0 {
			return 0
		}
		return x
	}
	traceOverhead := clampPct(1 - bestOn/bestOff)
	journalOverhead := clampPct(1 - bestFull/bestOn)
	if traceOverhead >= 0.05 {
		log.Printf("obs: tracing overhead %.2f%% exceeds the 5%% budget (on=%.0f req/s off=%.0f req/s)",
			100*traceOverhead, bestOn, bestOff)
		failures++
	}
	if journalOverhead >= 0.05 {
		log.Printf("obs: journal overhead %.2f%% exceeds the 5%% budget (full=%.0f req/s trace-only=%.0f req/s)",
			100*journalOverhead, bestFull, bestOn)
		failures++
	}

	return map[string]any{
		"mode":                "obs",
		"requests_per_config": (requests / workers) * workers,
		"workers":             workers,
		"reps":                reps,
		"hit_throughput_rps": map[string]any{
			"full_plane": bestFull, "tracing_on": bestOn, "tracing_off": bestOff,
		},
		"tracing_overhead_pct": 100 * traceOverhead,
		"journal_overhead_pct": 100 * journalOverhead,
		"overhead_budget_pct":  5.0,
		"checks":               checks,
		"failures":             failures,
	}
}

// submitCapturingID posts a build request and returns the X-Request-ID
// the response carried plus the space id it resolved to.
func submitCapturingID(client *http.Client, base string, body []byte) (reqID, spaceID string, ok bool) {
	resp, err := client.Post(base+"/v1/spaces", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", "", false
	}
	defer resp.Body.Close()
	reqID = resp.Header.Get("X-Request-ID")
	var out service.BuildResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || resp.StatusCode != http.StatusOK {
		return reqID, "", false
	}
	return reqID, out.ID, out.ID != ""
}
