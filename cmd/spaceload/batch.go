package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"time"

	"searchspace"
	"searchspace/internal/model"
	"searchspace/internal/service"
)

// batchDef is the batch-plane workload: a constrained space of a few
// thousand rows, big enough that a 1024-genotype batch is a real page
// and small enough that the build is instant.
func batchDef() *model.Definition {
	return &model.Definition{
		Name: "batch-load",
		Params: []model.Param{
			model.RangeParam("block_size_x", 1, 16),
			model.RangeParam("block_size_y", 1, 16),
			model.RangeParam("tile", 1, 16),
		},
		Constraints: []string{"block_size_x * block_size_y <= 64"},
	}
}

// rowsPage mirrors the GET /v1/spaces/{id}/rows response for
// repr=indices pages.
type rowsPage struct {
	Offset     int       `json:"offset"`
	Total      int       `json:"total"`
	Count      int       `json:"count"`
	NextOffset *int      `json:"next_offset"`
	Params     []string  `json:"params"`
	Columns    [][]int32 `json:"columns"`
}

// minSeconds runs fn reps times and returns the fastest wall time.
func minSeconds(reps int, fn func()) float64 {
	best := math.Inf(1)
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		fn()
		if s := time.Since(t0).Seconds(); s < best {
			best = s
		}
	}
	return best
}

// runBatchLoad measures what the columnar batch plane buys over the
// wire: the same 1024-genotype query stream resolved as 1024
// single-genotype requests (batch=1) versus one batched request
// (batch=1024), with an in-process SearchSpace.LookupRows baseline for
// scale. Every batched answer is checked byte-for-byte against its
// per-request counterpart — contains, lookup, neighbors, sample, and
// the rows paging plane — so the speedup number only stands on
// identical results.
func runBatchLoad(client *http.Client, base string, reps int) map[string]any {
	if reps < 1 {
		reps = 1
	}
	var failures int64
	fail := func(format string, args ...any) {
		failures++
		log.Printf("batch: "+format, args...)
	}
	// jsonEq reports whether two values have identical JSON encodings —
	// the "byte-identical results" contract between the batched and
	// per-request planes.
	jsonEq := func(a, b any) bool {
		ra, _ := json.Marshal(a)
		rb, _ := json.Marshal(b)
		return bytes.Equal(ra, rb)
	}

	def := batchDef()
	raw, err := service.MarshalProblem(def)
	if err != nil {
		log.Fatalf("batch: marshal: %v", err)
	}
	body := []byte(fmt.Sprintf(`{"problem": %s}`, raw))
	var built service.BuildResponse
	if !postInto(client, base+"/v1/spaces", body, &built) {
		log.Fatal("batch: build failed")
	}
	sbase := base + "/v1/spaces/" + built.ID

	// The query stream: the genotypes of the first n rows, fetched from
	// the paging plane in indices form. Resolving them through
	// batch/lookup must answer exactly 0..n-1, which pins correctness
	// of every timed request below.
	const n = 1024
	var page rowsPage
	if raw, ok := getRaw(client, fmt.Sprintf("%s/rows?repr=indices&limit=%d", sbase, n)); !ok {
		log.Fatal("batch: fetching genotype page failed")
	} else if err := json.Unmarshal(raw, &page); err != nil {
		log.Fatalf("batch: bad rows page: %v", err)
	}
	if page.Count != n {
		log.Fatalf("batch: space has %d rows, need at least %d", page.Total, n)
	}
	nParams := len(page.Params)

	// batch=1: the genotypes one request at a time.
	single := make([][]byte, n)
	for i := 0; i < n; i++ {
		cols := make([][]int32, nParams)
		for p := range cols {
			cols[p] = []int32{page.Columns[p][i]}
		}
		single[i], _ = json.Marshal(map[string]any{"indices": cols})
	}
	rows1 := make([]int, 0, n)
	batch1Seconds := minSeconds(reps, func() {
		rows1 = rows1[:0]
		for i := 0; i < n; i++ {
			var resp service.BatchRowsResponse
			if !postInto(client, sbase+"/batch/lookup", single[i], &resp) {
				log.Fatal("batch: single lookup failed")
			}
			rows1 = append(rows1, resp.Rows...)
		}
	})

	// batch=1024: the same stream in one request.
	whole, _ := json.Marshal(map[string]any{"indices": page.Columns})
	var batched service.BatchRowsResponse
	batch1024Seconds := minSeconds(reps, func() {
		batched = service.BatchRowsResponse{}
		if !postInto(client, sbase+"/batch/lookup", whole, &batched) {
			log.Fatal("batch: batched lookup failed")
		}
	})

	lookupParity := jsonEq(rows1, batched.Rows)
	if !lookupParity {
		fail("batched lookup answers differ from per-request answers")
	}
	for i, row := range batched.Rows {
		if row != i {
			fail("genotype of row %d resolved to %d", i, row)
			break
		}
	}

	// In-process baseline: the same genotypes through
	// SearchSpace.LookupRows, no wire.
	method, _ := searchspace.MethodByName("optimized")
	ss, _, err := searchspace.FromDefinition(batchDef()).BuildTimed(method)
	if err != nil {
		log.Fatalf("batch: local build: %v", err)
	}
	genotypes := make([][]int32, n)
	for i := range genotypes {
		g := make([]int32, nParams)
		for p := 0; p < nParams; p++ {
			g[p] = page.Columns[p][i]
		}
		genotypes[i] = g
	}
	var local []int
	inProcessSeconds := minSeconds(reps, func() { local = ss.LookupRows(genotypes) })
	if !jsonEq(local, batched.Rows) {
		fail("in-process LookupRows disagrees with the service")
	}

	// Parity sweeps over the remaining batch endpoints: every batched
	// answer must be byte-identical to its per-request counterpart.

	// contains: a seeded sample re-asked in columnar form.
	const kContains = 64
	var sample service.SampleResponse
	if !postInto(client, sbase+"/sample", []byte(fmt.Sprintf(`{"k": %d, "seed": 7}`, kContains)), &sample) {
		log.Fatal("batch: sample failed")
	}
	creq := service.BatchContainsRequest{Values: make([][]service.ValueDoc, nParams)}
	for p, name := range page.Params {
		creq.Params = append(creq.Params, name)
		col := make([]service.ValueDoc, len(sample.Configs))
		for i, cfg := range sample.Configs {
			col[i] = cfg[name]
		}
		creq.Values[p] = col
	}
	craw, _ := json.Marshal(creq)
	var bcontains service.BatchRowsResponse
	if !postInto(client, sbase+"/batch/contains", craw, &bcontains) {
		log.Fatal("batch: batch contains failed")
	}
	perReq := make([]int, 0, kContains)
	for _, cfg := range sample.Configs {
		body, _ := json.Marshal(map[string]any{"config": cfg})
		var resp service.ContainsResponse
		if !postInto(client, sbase+"/contains", body, &resp) {
			log.Fatal("batch: contains failed")
		}
		if resp.Results[0].Index != nil {
			perReq = append(perReq, *resp.Results[0].Index)
		} else {
			perReq = append(perReq, -1)
		}
	}
	containsParity := jsonEq(perReq, bcontains.Rows)
	if !containsParity {
		fail("batched contains answers differ from per-request answers")
	}

	// neighbors: the sampled rows' Hamming neighborhoods.
	nreq, _ := json.Marshal(service.BatchNeighborsRequest{Rows: sample.Rows})
	var bneigh service.BatchNeighborsResponse
	if !postInto(client, sbase+"/batch/neighbors", nreq, &bneigh) {
		log.Fatal("batch: batch neighbors failed")
	}
	neighborsParity := true
	for i, row := range sample.Rows {
		var resp service.NeighborsResponse
		body := []byte(fmt.Sprintf(`{"row": %d}`, row))
		if !postInto(client, sbase+"/neighbors", body, &resp) {
			log.Fatal("batch: neighbors failed")
		}
		if !jsonEq(resp.Rows, bneigh.Neighbors[i]) {
			neighborsParity = false
		}
	}
	if !neighborsParity {
		fail("batched neighbors differ from per-request answers")
	}

	// sample: one seed per column of the batched draw.
	seeds := []int64{11, 12, 13}
	sreq, _ := json.Marshal(service.BatchSampleRequest{K: 32, Seeds: seeds})
	var bsample service.BatchSampleResponse
	if !postInto(client, sbase+"/batch/sample", sreq, &bsample) {
		log.Fatal("batch: batch sample failed")
	}
	sampleParity := true
	for i, seed := range seeds {
		var resp service.SampleResponse
		body := []byte(fmt.Sprintf(`{"k": 32, "seed": %d, "rows_only": true}`, seed))
		if !postInto(client, sbase+"/sample", body, &resp) {
			log.Fatal("batch: seeded sample failed")
		}
		if !jsonEq(resp.Rows, bsample.Rows[i]) {
			sampleParity = false
		}
	}
	if !sampleParity {
		fail("batched sample draws differ from per-request draws")
	}

	// paging: walking the space page by page reassembles exactly the
	// single-page enumeration.
	var full rowsPage
	if raw, ok := getRaw(client, sbase+"/rows?repr=indices&limit=65536"); !ok {
		log.Fatal("batch: full rows page failed")
	} else if err := json.Unmarshal(raw, &full); err != nil {
		log.Fatalf("batch: bad rows page: %v", err)
	}
	walked := make([][]int32, nParams)
	for offset := 0; ; {
		var p rowsPage
		if raw, ok := getRaw(client, fmt.Sprintf("%s/rows?repr=indices&offset=%d&limit=512", sbase, offset)); !ok {
			log.Fatal("batch: rows page failed")
		} else if err := json.Unmarshal(raw, &p); err != nil {
			log.Fatalf("batch: bad rows page: %v", err)
		}
		for c := range p.Columns {
			walked[c] = append(walked[c], p.Columns[c]...)
		}
		if p.NextOffset == nil {
			break
		}
		offset = *p.NextOffset
	}
	pagingParity := jsonEq(walked, full.Columns)
	if !pagingParity {
		fail("paged enumeration differs from the single-page enumeration")
	}

	batch1CPS := float64(n) / batch1Seconds
	batch1024CPS := float64(n) / batch1024Seconds
	return map[string]any{
		"benchmark":         "batch-query",
		"space":             def.Name,
		"valid":             built.Size,
		"reps":              reps,
		"queries":           n,
		"batch1_seconds":    batch1Seconds,
		"batch1_cps":        batch1CPS,
		"batch1024_seconds": batch1024Seconds,
		"batch1024_cps":     batch1024CPS,
		// The acceptance headline: configs/sec over the wire, batched
		// versus one request per genotype, identical answers required.
		"speedup":          batch1024CPS / batch1CPS,
		"in_process_cps":   float64(n) / inProcessSeconds,
		"parity_lookup":    lookupParity,
		"parity_contains":  containsParity,
		"parity_neighbors": neighborsParity,
		"parity_sample":    sampleParity,
		"parity_paging":    pagingParity,
		"parity":           lookupParity && containsParity && neighborsParity && sampleParity && pagingParity,
		"failures":         failures,
	}
}
