// Command spaceload hammers a spaced service and reports throughput and
// cache behavior. By default it spins up an in-process server (the full
// HTTP path via net/http/httptest), so the numbers measure the service
// stack, not a network; point -server at a running daemon to load-test
// over the wire instead.
//
// Eight workloads, selected with -mode:
//
//   - service (default): many tuning clients sharing few kernels —
//     workers draw one of -spaces distinct definitions, submit it via
//     POST /v1/spaces (a build on first contact, a cache hit after) and
//     follow up with sample and contains queries. Writes
//     BENCH_service.json. (This mode was called "build" before the
//     parallel engine landed; "build" now benchmarks construction
//     itself.)
//
//   - build: the parallel-construction sweep — for the Hotspot and GEMM
//     workloads, race the optimized solver through POST /v1/compare at
//     workers 1, 2, 4, and GOMAXPROCS (min wall time over -reps runs;
//     compare bypasses the cache, so every run is a real construction),
//     assert every run's output checksum is identical (the determinism
//     contract over the wire), and report the speedup curve. Writes
//     BENCH_parallel.json.
//
//   - sessions: a tuning-server workload — workers create ask/tell
//     sessions on the shared spaces, drive each to budget exhaustion
//     (measuring a synthetic objective client-side), fetch the best and
//     delete the session. Reports sessions/sec plus client-observed
//     ask/tell latencies. Writes BENCH_sessions.json.
//
//   - restart: the persistence workload — builds -spaces large
//     constrained spaces (Hotspot variants) on a server backed by a
//     snapshot store, captures their answers, simulates a daemon
//     restart (new server, same store directory), re-submits every
//     definition and verifies each comes back as a cache hit restored
//     from disk with zero new builds and byte-identical describe/
//     contains/sample answers. Reports restore-vs-rebuild speedup.
//     Writes BENCH_store.json. (In-process only: -server is rejected,
//     since a remote daemon cannot be restarted from here.)
//
//   - solver: the enumeration-kernel benchmark — races the closure-free
//     instruction-table kernel against the retained pre-refactor
//     closure enumerator on Hotspot, GEMM, and a constraint-sparse
//     space (min wall time over -reps runs, byte parity asserted every
//     rep), reporting speedup, allocations, ns/node, and nodes visited
//     before/after (bulk tail expansion collapses the sparse space's
//     node count to its constrained prefix). In-process, no server.
//     Writes BENCH_solver.json.
//
//   - obs: the observability cost check — runs three identical
//     in-process servers (full plane: tracing + lifecycle journal;
//     tracing only; everything off), hammers the cache-hit path on
//     all, and asserts both the tracing overhead (trace-only vs off)
//     and the journal overhead (full vs trace-only) stay under 5%
//     (best-of--reps throughputs compared). Also verifies the
//     functional contract: every response carries an X-Request-ID, the
//     cold build's trace resolves by that ID with a build span, its
//     build_finish event cross-links the same request id, /v1/builds
//     and the per-space attribution stats serve, /v1/trace/recent and
//     /metrics (including the go_* and lifecycle families) are
//     populated. Writes BENCH_obs.json. (In-process only: -server is
//     rejected.)
//
//   - delta: the incremental-construction benchmark — builds the full
//     Hotspot space once as the cached superset, then races producing a
//     tightened variant (one added constraint) by fresh solver build
//     versus Restrict over the superset's columns (min wall time over
//     -reps runs per side, byte parity asserted every rep), reporting
//     the restrict-vs-rebuild speedup. In-process, no server. Writes
//     BENCH_delta.json.
//
//   - batch: the batch-query-plane benchmark — resolves the same
//     1024-genotype stream through POST batch/lookup as 1024
//     single-genotype requests versus one batched request (min wall
//     time over -reps runs), requires byte-identical answers between
//     the batched and per-request planes on every endpoint (contains,
//     lookup, neighbors, sample, and the rows paging walk), and
//     reports configs/sec for both plus an in-process LookupRows
//     baseline. Writes BENCH_batch.json.
//
//   - ops: the operations-plane driver, not a benchmark — submits one
//     deliberately slow build (a deep all-parameter constraint forces
//     a full ~10^8-node tree walk while keeping the valid set tiny) so
//     an outside observer can watch it mid-flight through GET
//     /v1/builds and `spacecli top`, then checks the build_finish
//     event, attribution row, and trace all cross-link the same
//     -request-id. Meant against a live daemon: CI backgrounds it and
//     polls /v1/builds with curl while it runs.
//
//     spaceload -spaces 8 -requests 2000 -workers 16
//     spaceload -mode build -reps 3
//     spaceload -mode sessions -spaces 8 -requests 300 -workers 16
//     spaceload -mode restart -spaces 4
//     spaceload -mode solver -reps 3
//     spaceload -mode obs -reps 3 -requests 2000 -workers 16
//     spaceload -mode batch -reps 3
//     spaceload -mode delta -reps 3
//     spaceload -mode ops -server http://localhost:8080 -request-id ci-slow-1
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"searchspace/internal/core"
	"searchspace/internal/model"
	"searchspace/internal/service"
	"searchspace/internal/store"
	"searchspace/internal/tuner"
	"searchspace/internal/workloads"
)

func main() {
	server := flag.String("server", "", "spaced base URL (default: in-process server)")
	mode := flag.String("mode", "service", "workload: service | build | sessions | restart | solver | obs | batch | delta | ops")
	reps := flag.Int("reps", 3, "build/solver modes: runs per measured point; the minimum wall time is kept")
	storeDir := flag.String("store-dir", "", "restart mode: snapshot store directory (default: a fresh temp dir)")
	spaces := flag.Int("spaces", 8, "distinct definitions in the workload")
	requests := flag.Int("requests", 2000, "total build requests (build mode) or sessions (sessions mode)")
	workers := flag.Int("workers", 16, "concurrent clients")
	batch := flag.Int("batch", 8, "sessions mode: configurations per ask/tell round trip")
	evals := flag.Int("evals", 40, "sessions mode: evaluation budget per session")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	requestID := flag.String("request-id", "ops-load-1", "ops mode: X-Request-ID sent with the slow build, for /v1/builds and journal cross-links")
	out := flag.String("out", "", "result file (default BENCH_service.json or BENCH_sessions.json by mode; \"-\" = stdout only)")
	flag.Parse()

	base := *server
	if base == "" && *mode != "restart" && *mode != "solver" && *mode != "obs" && *mode != "delta" {
		// restart mode manages its own pair of servers (before/after the
		// simulated restart), solver and delta modes benchmark the
		// library in-process, and obs mode runs a tracing-on/tracing-off
		// server pair, so no default server is needed for them.
		cfg := service.RegistryConfig{MaxEntries: 1024}
		if *mode == "build" {
			// The sweep measures the ENGINE's scaling, so the in-process
			// pool must not be the limiter: size it past every sweep
			// point (a real daemon's -build-workers clamp is interesting
			// to observe; our own would only hide the curve).
			cfg.BuildWorkers = runtime.GOMAXPROCS(0)
			if cfg.BuildWorkers < 8 {
				cfg.BuildWorkers = 8
			}
		}
		ts := httptest.NewServer(service.NewServer(service.NewRegistry(cfg)))
		defer ts.Close()
		base = ts.URL
	}

	// Distinct definitions: same parameter shape, different constraint
	// bound, so every space is a separate content address with its own
	// construction (names alone would not — they are display labels,
	// excluded from the content address).
	bodies := make([][]byte, *spaces)
	for i := range bodies {
		bodies[i] = []byte(fmt.Sprintf(`{"problem": {
			"name": "load-%d",
			"params": [
				{"name": "block_size_x", "values": [1, 2, 4, 8, 16, 32, 64]},
				{"name": "block_size_y", "values": [1, 2, 4, 8, 16]},
				{"name": "tile", "values": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]}
			],
			"constraints": ["block_size_x * block_size_y <= %d", "tile <= block_size_x"]
		}}`, i, 16+8*i))
	}

	client := &http.Client{Timeout: time.Minute}

	outFile := *out
	var result map[string]any
	switch *mode {
	case "service":
		if outFile == "" {
			outFile = "BENCH_service.json"
		}
		result = runBuildLoad(client, base, bodies, *requests, *workers, *seed)
	case "build":
		if outFile == "" {
			outFile = "BENCH_parallel.json"
		}
		result = runParallelSweep(client, base, *reps)
	case "sessions":
		if outFile == "" {
			outFile = "BENCH_sessions.json"
		}
		result = runSessionLoad(client, base, bodies, *requests, *workers, *batch, *evals, *seed)
	case "restart":
		if *server != "" {
			log.Fatal("restart mode manages its own in-process servers; -server is not supported")
		}
		if outFile == "" {
			outFile = "BENCH_store.json"
		}
		result = runRestartLoad(client, *spaces, *storeDir)
	case "solver":
		if *server != "" {
			log.Fatal("solver mode benchmarks the enumeration kernel in-process; -server is not supported")
		}
		if outFile == "" {
			outFile = "BENCH_solver.json"
		}
		result = runSolverBench(*reps)
	case "obs":
		if *server != "" {
			log.Fatal("obs mode manages its own pair of in-process servers; -server is not supported")
		}
		if outFile == "" {
			outFile = "BENCH_obs.json"
		}
		result = runObsBench(*reps, *requests, *workers)
	case "batch":
		if outFile == "" {
			outFile = "BENCH_batch.json"
		}
		result = runBatchLoad(client, base, *reps)
	case "delta":
		if *server != "" {
			log.Fatal("delta mode benchmarks incremental construction in-process; -server is not supported")
		}
		if outFile == "" {
			outFile = "BENCH_delta.json"
		}
		result = runDeltaBench(*reps)
	case "ops":
		// A driver, not a benchmark: no BENCH artifact by default.
		if outFile == "" {
			outFile = "-"
		}
		result = runOpsLoad(client, base, *requestID)
	default:
		log.Fatalf("unknown mode %q (want service, build, sessions, restart, solver, obs, batch, delta, or ops)", *mode)
	}

	pretty, _ := json.MarshalIndent(result, "", "  ")
	fmt.Printf("%s\n", pretty)
	if outFile != "-" {
		if err := os.WriteFile(outFile, append(pretty, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", outFile)
	}
	if result["failures"].(int64) > 0 {
		os.Exit(1)
	}
}

// runBuildLoad is the original mixed build/query workload.
func runBuildLoad(client *http.Client, base string, bodies [][]byte, requests, workers int, seed int64) map[string]any {
	// Snapshot the daemon's counters first so results are this run's
	// delta — a long-lived -server target has traffic from before.
	before, err := fetchStats(client, base)
	if err != nil {
		log.Fatal(err)
	}

	var (
		wg       sync.WaitGroup
		issued   atomic.Int64
		failures atomic.Int64
	)
	start := time.Now()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for issued.Add(1) <= int64(requests) {
				body := bodies[rng.Intn(len(bodies))]
				id, ok := postBuild(client, base, body)
				if !ok {
					failures.Add(1)
					continue
				}
				// Follow-up queries exercise the cached space.
				switch rng.Intn(3) {
				case 0:
					payload := fmt.Sprintf(`{"k": 4, "seed": %d}`, rng.Int63())
					if !postOK(client, base+"/v1/spaces/"+id+"/sample", []byte(payload)) {
						failures.Add(1)
					}
				case 1:
					payload := fmt.Sprintf(`{"config": {"block_size_x": %d, "block_size_y": %d, "tile": %d}}`,
						1<<rng.Intn(7), 1<<rng.Intn(5), 1+rng.Intn(10))
					if !postOK(client, base+"/v1/spaces/"+id+"/contains", []byte(payload)) {
						failures.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := fetchStats(client, base)
	if err != nil {
		log.Fatal(err)
	}

	// This run's contribution: after minus before.
	prior := make(map[string]int64, len(before.Endpoints))
	for _, ep := range before.Endpoints {
		prior[ep.Route] = ep.Count
	}
	total := int64(0)
	for _, ep := range after.Endpoints {
		total += ep.Count - prior[ep.Route]
	}
	dHits := (after.Cache.Hits + after.Cache.Joins) - (before.Cache.Hits + before.Cache.Joins)
	dMisses := after.Cache.Misses - before.Cache.Misses
	hitRatio := 0.0
	if dHits+dMisses > 0 {
		hitRatio = float64(dHits) / float64(dHits+dMisses)
	}
	return map[string]any{
		"benchmark":        "service-load",
		"spaces":           len(bodies),
		"workers":          workers,
		"build_requests":   requests,
		"http_requests":    total,
		"failures":         failures.Load(),
		"duration_seconds": elapsed.Seconds(),
		"req_per_sec":      float64(total) / elapsed.Seconds(),
		"hit_ratio":        hitRatio,
		"builds":           after.Cache.Builds - before.Cache.Builds,
		"build_time_hist":  after.BuildTimeHist,
		"endpoints":        after.Endpoints,
	}
}

// latencyAgg accumulates client-observed request latencies.
type latencyAgg struct {
	count int64
	total time.Duration
	max   time.Duration
}

func (l *latencyAgg) add(d time.Duration) {
	l.count++
	l.total += d
	if d > l.max {
		l.max = d
	}
}

func (l *latencyAgg) merge(o latencyAgg) {
	l.count += o.count
	l.total += o.total
	if o.max > l.max {
		l.max = o.max
	}
}

func (l *latencyAgg) meanMs() float64 {
	if l.count == 0 {
		return 0
	}
	return float64(l.total) / float64(l.count) / float64(time.Millisecond)
}

// runSessionLoad is the tuning-server workload: each "request" is one
// full session lifecycle (create, ask/tell to exhaustion, best, delete)
// against one of the shared spaces, cycling through all four strategies.
func runSessionLoad(client *http.Client, base string, bodies [][]byte, sessions, workers, batch, evals int, seed int64) map[string]any {
	before, err := fetchStats(client, base)
	if err != nil {
		log.Fatal(err)
	}
	strategies := tuner.StrategyNames()

	var (
		wg        sync.WaitGroup
		issued    atomic.Int64
		failures  atomic.Int64
		completed atomic.Int64
		mu        sync.Mutex
		askLat    latencyAgg
		tellLat   latencyAgg
	)
	start := time.Now()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			var asks, tells latencyAgg
			defer func() {
				mu.Lock()
				askLat.merge(asks)
				tellLat.merge(tells)
				mu.Unlock()
			}()
			for {
				n := issued.Add(1)
				if n > int64(sessions) {
					return
				}
				spaceID, ok := postBuild(client, base, bodies[rng.Intn(len(bodies))])
				if !ok {
					failures.Add(1)
					continue
				}
				if !runOneSession(client, base, spaceID, strategies[int(n)%len(strategies)],
					rng.Int63(), batch, evals, &asks, &tells) {
					failures.Add(1)
					continue
				}
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := fetchStats(client, base)
	if err != nil {
		log.Fatal(err)
	}
	return map[string]any{
		"benchmark":        "session-load",
		"spaces":           len(bodies),
		"workers":          workers,
		"sessions":         sessions,
		"batch":            batch,
		"evals_per_sess":   evals,
		"completed":        completed.Load(),
		"failures":         failures.Load(),
		"duration_seconds": elapsed.Seconds(),
		"sessions_per_sec": float64(completed.Load()) / elapsed.Seconds(),
		"asks":             askLat.count,
		"ask_mean_ms":      askLat.meanMs(),
		"ask_max_ms":       float64(askLat.max) / float64(time.Millisecond),
		"tells":            tellLat.count,
		"tell_mean_ms":     tellLat.meanMs(),
		"tell_max_ms":      float64(tellLat.max) / float64(time.Millisecond),
		"server_evals":     sessionEvals(after) - sessionEvals(before),
		"session_table":    after.SessionTable,
		"strategies":       after.Sessions,
	}
}

// runOneSession drives one session to exhaustion with a synthetic
// objective (the service's cost is independent of the score landscape,
// so any deterministic function loads it equally).
func runOneSession(client *http.Client, base, spaceID, strategy string, seed int64, batch, evals int, asks, tells *latencyAgg) bool {
	sbase := base + "/v1/spaces/" + spaceID + "/sessions"
	var created service.SessionCreateResponse
	body := fmt.Sprintf(`{"strategy": %q, "seed": %d, "budget": {"max_evals": %d}}`, strategy, seed, evals)
	if !postInto(client, sbase, []byte(body), &created) {
		return false
	}
	sbase += "/" + created.Session
	for {
		var ask service.AskResponse
		t0 := time.Now()
		if !postInto(client, sbase+"/ask", []byte(fmt.Sprintf(`{"max": %d}`, batch)), &ask) {
			return false
		}
		asks.add(time.Since(t0))
		if len(ask.Rows) == 0 {
			break
		}
		results := make([]tuner.Measurement, len(ask.Rows))
		for i, row := range ask.Rows {
			// Synthetic objective: a hash-spread score, a tiny cost.
			results[i] = tuner.Measurement{
				Row:   row,
				Score: float64((uint32(row) * 2654435761) % 100003),
				Cost:  0.001,
			}
		}
		raw, _ := json.Marshal(service.TellRequest{Results: results})
		t0 = time.Now()
		if !postInto(client, sbase+"/tell", raw, &service.TellResponse{}) {
			return false
		}
		tells.add(time.Since(t0))
	}
	resp, err := client.Get(sbase + "/best")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	req, _ := http.NewRequest(http.MethodDelete, sbase, nil)
	if dresp, err := client.Do(req); err == nil {
		io.Copy(io.Discard, dresp.Body)
		dresp.Body.Close()
	}
	return true
}

// runParallelSweep benchmarks the parallel construction engine through
// the service: for each real-world workload it races the optimized
// solver via POST /v1/compare — which bypasses the cache, so every
// request is a genuine construction — at increasing worker counts,
// keeping the minimum wall time per point. Every response carries a
// checksum of the resolved space's full enumeration; the sweep asserts
// all of them are identical, which is the determinism contract
// (parallel == sequential, byte for byte) verified over the wire
// against whatever daemon -server points at. The requested worker
// count is a hint: the daemon's -build-workers pool caps it, and the
// granted count comes back in each result, so sweeping a small-pool
// daemon shows the clamp instead of a fake curve.
func runParallelSweep(client *http.Client, base string, reps int) map[string]any {
	if reps < 1 {
		reps = 1
	}
	maxW := runtime.GOMAXPROCS(0)
	points := []int{1, 2, 4, maxW}
	sort.Ints(points)
	workerPoints := points[:0]
	for i, w := range points {
		if i == 0 || w != points[i-1] {
			workerPoints = append(workerPoints, w)
		}
	}

	defs := []*model.Definition{workloads.Hotspot(), workloads.GEMM()}
	var failures int64
	var perWorkload []map[string]any
	parityOK := true
	speedupAt4 := 0.0
	for _, def := range defs {
		raw, err := service.MarshalProblem(def)
		if err != nil {
			log.Fatalf("sweep: marshal %s: %v", def.Name, err)
		}
		checksums := make(map[string]struct{})
		valid := 0
		var t1 float64
		var curve []map[string]any
		for _, w := range workerPoints {
			best := math.Inf(1)
			granted := 0
			for rep := 0; rep < reps; rep++ {
				body := fmt.Sprintf(`{"problem": %s, "methods": ["optimized"], "workers": %d}`, raw, w)
				var resp service.CompareResponse
				if !postInto(client, base+"/v1/compare", []byte(body), &resp) {
					failures++
					continue
				}
				if len(resp.Results) != 1 || resp.Results[0].Error != "" {
					log.Printf("sweep: %s workers=%d: unexpected compare result %+v", def.Name, w, resp.Results)
					failures++
					continue
				}
				r := resp.Results[0]
				if r.WallSeconds < best {
					best = r.WallSeconds
				}
				granted = r.Workers
				valid = r.Valid
				checksums[r.Checksum] = struct{}{}
			}
			if math.IsInf(best, 1) {
				continue // every rep failed; already counted
			}
			if w == 1 {
				t1 = best
			}
			speedup := 0.0
			if t1 > 0 && best > 0 {
				speedup = t1 / best
			}
			// The acceptance headline is pinned to Hotspot (the paper's
			// flagship workload), not the best workload of the sweep.
			if w == 4 && def.Name == "Hotspot" {
				speedupAt4 = speedup
			}
			curve = append(curve, map[string]any{
				"workers_requested": w,
				"workers_granted":   granted,
				"wall_seconds":      best,
				"speedup":           speedup,
			})
		}
		if len(checksums) != 1 {
			log.Printf("sweep: %s: %d distinct output checksums across the sweep, want 1", def.Name, len(checksums))
			failures++
			parityOK = false
		}
		perWorkload = append(perWorkload, map[string]any{
			"name":   def.Name,
			"valid":  valid,
			"curve":  curve,
			"parity": len(checksums) == 1,
		})
	}

	snap, err := fetchStats(client, base)
	if err != nil {
		log.Fatal(err)
	}
	return map[string]any{
		"benchmark": "parallel-build",
		"num_cpu":   runtime.NumCPU(),
		"reps":      reps,
		"workloads": perWorkload,
		// speedup_at_4workers is the acceptance headline: Hotspot's
		// t1/t4. On a single-CPU host the curve is necessarily flat
		// (~1x) — goroutines timeshare one core — so read it together
		// with num_cpu.
		"speedup_at_4workers": speedupAt4,
		"parity":              parityOK,
		"failures":            failures,
		"build_pool":          snap.Cache.BuildPool,
	}
}

// runRestartLoad measures what the snapshot tier buys across a daemon
// restart. Phase 1 boots a store-backed in-process server, builds n
// large constrained spaces (Hotspot variants — the paper's flagship
// workload — each with one extra tile constraint so every variant is a
// distinct content address needing its own construction), and captures
// each space's full describe/contains/sample answers. Phase 2 tears
// that server down, boots a fresh one over the same store directory (a
// restart: all RAM state gone, blobs remain), re-submits every
// definition, and requires each to come back `cached:true` with ZERO
// new builds, answers byte-identical to phase 1, and a client-observed
// restore latency at least an order of magnitude under the rebuild's.
func runRestartLoad(client *http.Client, n int, storeDir string) map[string]any {
	if storeDir == "" {
		dir, err := os.MkdirTemp("", "spaceload-store-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		storeDir = dir
	}
	if n < 1 {
		n = 1
	}

	// Distinct Hotspot variants: power_scale is an inert single-value
	// parameter (no constraint mentions it), so giving each variant a
	// different value changes the content address — forcing a separate
	// construction per variant — without changing the solver's workload
	// or the space's shape.
	bodies := make([][]byte, n)
	names := make([]string, n)
	for i := range bodies {
		def := workloads.Hotspot()
		def.Name = fmt.Sprintf("hotspot-restart-%d", i)
		for pi, p := range def.Params {
			if p.Name == "power_scale" {
				def.Params[pi] = model.IntsParam("power_scale", i+1)
			}
		}
		raw, err := service.MarshalProblem(def)
		if err != nil {
			log.Fatal(err)
		}
		bodies[i] = []byte(fmt.Sprintf(`{"problem": %s}`, raw))
		names[i] = def.Name
	}

	newServer := func() (*httptest.Server, *service.Registry) {
		st, err := store.Open(store.Config{Dir: storeDir})
		if err != nil {
			log.Fatal(err)
		}
		reg := service.NewRegistry(service.RegistryConfig{MaxEntries: 64, Store: st})
		return httptest.NewServer(service.NewServer(reg)), reg
	}

	// A fixed probe per space: one describe, one membership batch, one
	// seeded sample. Byte-identical responses across the restart prove
	// size, bounds, and membership answers survived intact.
	type probe struct {
		id       string
		describe []byte
		contains []byte
		sample   []byte
	}
	// The first config is valid (32x4 block, trivial tiling), the second
	// invalid (1x1 block violates block_size_x*block_size_y >= 32), so
	// the probe pins both membership polarities. power_scale must match
	// the variant's value for the valid one to stay valid.
	containsBody := func(variant int) []byte {
		return []byte(fmt.Sprintf(`{"configs": [
		{"block_size_x": 32, "block_size_y": 4, "tile_size_x": 1, "tile_size_y": 1,
		 "temporal_tiling_factor": 2, "loop_unroll_factor_t": 1, "sh_power": 0,
		 "blocks_per_sm": 0, "use_double_buffer": 0, "power_scale": %d, "version": 0},
		{"block_size_x": 1, "block_size_y": 1, "tile_size_x": 1, "tile_size_y": 1,
		 "temporal_tiling_factor": 1, "loop_unroll_factor_t": 1, "sh_power": 0,
		 "blocks_per_sm": 0, "use_double_buffer": 0, "power_scale": %d, "version": 0}]}`,
			variant+1, variant+1))
	}
	sampleBody := []byte(`{"k": 16, "seed": 42, "strategy": "uniform"}`)
	probeSpace := func(base, id string, variant int) (probe, bool) {
		p := probe{id: id}
		var ok bool
		if p.describe, ok = getRaw(client, base+"/v1/spaces/"+id); !ok {
			return p, false
		}
		if p.contains, ok = postRaw(client, base+"/v1/spaces/"+id+"/contains", containsBody(variant)); !ok {
			return p, false
		}
		if p.sample, ok = postRaw(client, base+"/v1/spaces/"+id+"/sample", sampleBody); !ok {
			return p, false
		}
		return p, true
	}

	var failures int64
	fail := func(format string, args ...any) {
		failures++
		log.Printf("restart: "+format, args...)
	}

	// Phase 1: cold builds.
	ts1, reg1 := newServer()
	buildMs := make([]float64, n)
	solverSeconds := make([]float64, n)
	sizes := make([]int, n)
	probes := make([]probe, n)
	for i, body := range bodies {
		var built service.BuildResponse
		t0 := time.Now()
		if !postInto(client, ts1.URL+"/v1/spaces", body, &built) {
			log.Fatalf("restart: building %s failed", names[i])
		}
		buildMs[i] = float64(time.Since(t0)) / float64(time.Millisecond)
		if built.Cached {
			fail("%s: first build claims cached", names[i])
		}
		solverSeconds[i] = built.Build.WallSeconds
		sizes[i] = built.Size
		p, ok := probeSpace(ts1.URL, built.ID, i)
		if !ok {
			log.Fatalf("restart: probing %s failed", names[i])
		}
		probes[i] = p
	}
	before := reg1.Stats()
	if before.Builds != int64(n) {
		fail("phase 1 ran %d builds, want %d", before.Builds, n)
	}
	ts1.Close()

	// Phase 2: the restart, repeated a few times (each repetition is a
	// fresh registry over the same blobs) with the per-space MINIMUM
	// restore latency kept — one-shot restore timings are noisy at the
	// tens-of-milliseconds scale, and the minimum is the honest cost of
	// the restore itself.
	const restartReps = 3
	restoreMs := make([]float64, n)
	speedups := make([]float64, n)
	var after service.RegistryStats
	var storeStats *store.Stats
	for rep := 0; rep < restartReps; rep++ {
		ts2, reg2 := newServer()
		for i, body := range bodies {
			var built service.BuildResponse
			t0 := time.Now()
			if !postInto(client, ts2.URL+"/v1/spaces", body, &built) {
				log.Fatalf("restart: re-submitting %s failed", names[i])
			}
			ms := float64(time.Since(t0)) / float64(time.Millisecond)
			if rep == 0 || ms < restoreMs[i] {
				restoreMs[i] = ms
			}
			if !built.Cached {
				fail("%s: re-submit after restart was not a cache hit", names[i])
			}
			if built.ID != probes[i].id {
				fail("%s: id changed across restart: %s -> %s", names[i], probes[i].id, built.ID)
			}
			if built.Size != sizes[i] {
				fail("%s: size changed across restart: %d -> %d", names[i], sizes[i], built.Size)
			}
			p, ok := probeSpace(ts2.URL, built.ID, i)
			if !ok {
				log.Fatalf("restart: re-probing %s failed", names[i])
			}
			if !bytes.Equal(p.describe, probes[i].describe) {
				fail("%s: describe (size/bounds) differs after restore", names[i])
			}
			if !bytes.Equal(p.contains, probes[i].contains) {
				fail("%s: membership answers differ after restore", names[i])
			}
			if !bytes.Equal(p.sample, probes[i].sample) {
				fail("%s: seeded sample differs after restore", names[i])
			}
		}
		after = reg2.Stats()
		if after.Builds != 0 {
			fail("restarted server (rep %d) ran %d builds, want 0 (everything should restore)", rep, after.Builds)
		}
		if after.Restores != int64(n) {
			fail("restarted server (rep %d) restored %d spaces, want %d", rep, after.Restores, n)
		}
		storeStats = reg2.StoreStats()
		ts2.Close()
	}
	for i := range speedups {
		speedups[i] = buildMs[i] / restoreMs[i]
	}

	minSpeedup, meanSpeedup := speedups[0], 0.0
	for _, s := range speedups {
		meanSpeedup += s
		if s < minSpeedup {
			minSpeedup = s
		}
	}
	meanSpeedup /= float64(n)

	perSpace := make([]map[string]any, n)
	for i := range perSpace {
		perSpace[i] = map[string]any{
			"name":           names[i],
			"id":             probes[i].id,
			"valid":          sizes[i],
			"solver_seconds": solverSeconds[i],
			"build_ms":       buildMs[i],
			"restore_ms":     restoreMs[i],
			"speedup":        speedups[i],
		}
	}
	return map[string]any{
		"benchmark":          "store-restart",
		"spaces":             n,
		"store_dir_bytes":    storeStats.Bytes,
		"store_blobs":        storeStats.Blobs,
		"builds_after_boot":  after.Builds,
		"restores":           after.Restores,
		"mean_speedup":       meanSpeedup,
		"min_speedup":        minSpeedup,
		"failures":           failures,
		"per_space":          perSpace,
		"identical_answers":  failures == 0,
		"restore_vs_rebuild": fmt.Sprintf("disk restore is %.1fx faster than rebuild (mean over %d spaces)", meanSpeedup, n),
	}
}

// getRaw issues a GET and returns the body on 200.
func getRaw(client *http.Client, url string) ([]byte, bool) {
	resp, err := client.Get(url)
	if err != nil {
		log.Printf("GET %s: %v", url, err)
		return nil, false
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Printf("GET %s: HTTP %d: %s", url, resp.StatusCode, raw)
		return nil, false
	}
	return raw, true
}

// postRaw issues a POST and returns the body on 200.
func postRaw(client *http.Client, url string, body []byte) ([]byte, bool) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Printf("POST %s: %v", url, err)
		return nil, false
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Printf("POST %s: HTTP %d: %s", url, resp.StatusCode, raw)
		return nil, false
	}
	return raw, true
}

// sessionEvals sums per-strategy evaluations in a snapshot.
func sessionEvals(snap service.MetricsSnapshot) int64 {
	var n int64
	for _, s := range snap.Sessions {
		n += s.Evaluations
	}
	return n
}

// fetchStats reads the daemon's /v1/stats snapshot.
func fetchStats(client *http.Client, base string) (service.MetricsSnapshot, error) {
	var snap service.MetricsSnapshot
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return snap, fmt.Errorf("GET /v1/stats: %w", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(raw, &snap); err != nil {
		return snap, fmt.Errorf("bad stats response: %w", err)
	}
	return snap, nil
}

// postBuild submits a definition and returns the space id.
func postBuild(client *http.Client, base string, body []byte) (string, bool) {
	var built service.BuildResponse
	if !postInto(client, base+"/v1/spaces", body, &built) {
		return "", false
	}
	return built.ID, true
}

// postInto issues a POST and decodes a 200 response into out.
func postInto(client *http.Client, url string, body []byte, out any) bool {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Printf("POST %s: %v", url, err)
		return false
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Printf("POST %s: HTTP %d: %s", url, resp.StatusCode, raw)
		return false
	}
	if err := json.Unmarshal(raw, out); err != nil {
		log.Printf("POST %s: bad response: %v", url, err)
		return false
	}
	return true
}

// postOK issues a POST and reports whether it returned 200.
func postOK(client *http.Client, url string, body []byte) bool {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Printf("POST %s: %v", url, err)
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Printf("POST %s: HTTP %d", url, resp.StatusCode)
		return false
	}
	return true
}

// sparseDef is the constraint-sparse workload of the solver benchmark:
// two heavily constrained leading parameters and a four-parameter
// unconstrained tail. The pre-kernel walk pays a per-node visit for
// every tail node; the kernel emits each surviving prefix's tail as one
// cartesian block, so this is where bulk expansion shows its structural
// win (nodes visited collapse to the constrained prefix).
func sparseDef() *model.Definition {
	bx := make([]int, 32)
	for i := range bx {
		bx[i] = i + 1
	}
	return &model.Definition{
		Name: "ConstraintSparse",
		Params: []model.Param{
			model.IntsParam("block_size_x", bx...),
			model.IntsParam("block_size_y", 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16),
			model.RangeParam("unroll_a", 1, 8),
			model.RangeParam("unroll_b", 1, 8),
			model.RangeParam("tile", 1, 8),
			model.IntsParam("layout", 0, 1, 2, 3, 4, 5),
		},
		Constraints: []string{
			"block_size_x * block_size_y <= 256",
			"block_size_x * block_size_y >= 16",
		},
	}
}

// measureAllocs returns heap allocations performed by fn.
func measureAllocs(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// runSolverBench races the closure-free kernel against the retained
// pre-refactor reference enumerator on the paper's dense workloads
// (Hotspot, GEMM) plus a constraint-sparse space, asserting byte parity
// on every repetition and reporting wall time, ns/node, allocations,
// and nodes visited before/after (tail expansion should slash visits on
// the sparse space).
func runSolverBench(reps int) map[string]any {
	if reps < 1 {
		reps = 1
	}
	defs := []*model.Definition{workloads.Hotspot(), workloads.GEMM(), sparseDef()}

	var failures int64
	var perWorkload []map[string]any
	parityOK := true
	sparseSpeedup := 0.0
	var hotspotAllocsBefore, hotspotAllocsAfter uint64
	for _, def := range defs {
		prob, err := def.ToProblem()
		if err != nil {
			log.Fatalf("solver: %s: %v", def.Name, err)
		}
		compiled := prob.Compile(core.DefaultOptions())
		// Warm both paths once outside the measured region: the
		// reference's closure lists are built lazily and memoized, and
		// historically they were constructed inside Compile — charging
		// them to the first measured run would inflate the "before"
		// numbers.
		compiled.SolveColumnarRef(nil)
		compiled.SolveColumnar()

		workloadParity := true
		var refCol, kerCol *core.Columnar
		var nodesBefore, nodesAfter int64
		var kernelStats core.EnumStats
		// Allocations are measured once per side (they are
		// deterministic); wall times take the minimum over at least
		// seven timed runs with no GC fencing — a long-lived daemon
		// enumerates into a warm heap, and the minimum discards the
		// runs a GC cycle or cold page faults happened to land in
		// (the kernel side is fast enough on the sparse workload that
		// either would otherwise dominate the measurement).
		refAllocs := measureAllocs(func() { refCol, nodesBefore, _ = compiled.SolveColumnarRef(nil) })
		kerAllocs := measureAllocs(func() { kerCol, kernelStats, _ = compiled.SolveColumnarStats(nil) })
		timedReps := reps
		if timedReps < 7 {
			timedReps = 7
		}
		refBest, kerBest := math.Inf(1), math.Inf(1)
		for rep := 0; rep < timedReps; rep++ {
			t0 := time.Now()
			refCol, nodesBefore, _ = compiled.SolveColumnarRef(nil)
			if s := time.Since(t0).Seconds(); s < refBest {
				refBest = s
			}
			t0 = time.Now()
			kerCol, kernelStats, _ = compiled.SolveColumnarStats(nil)
			if s := time.Since(t0).Seconds(); s < kerBest {
				kerBest = s
			}
			if !columnarEqual(refCol, kerCol) {
				log.Printf("solver: %s: kernel output differs from reference (rep %d)", def.Name, rep)
				failures++
				parityOK = false
				workloadParity = false
			}
		}
		nodesAfter = kernelStats.Nodes + kernelStats.Blocks
		speedup := refBest / kerBest
		if def.Name == "ConstraintSparse" {
			sparseSpeedup = speedup
		}
		if def.Name == "Hotspot" {
			hotspotAllocsBefore, hotspotAllocsAfter = refAllocs, kerAllocs
		}
		perWorkload = append(perWorkload, map[string]any{
			"name":               def.Name,
			"valid":              refCol.NumSolutions(),
			"wall_before_s":      refBest,
			"wall_after_s":       kerBest,
			"speedup":            speedup,
			"nodes_before":       nodesBefore,
			"nodes_after":        nodesAfter,
			"node_reduction":     float64(nodesBefore) / float64(nodesAfter),
			"ns_per_node_before": refBest * 1e9 / float64(nodesBefore),
			"ns_per_node_after":  kerBest * 1e9 / float64(nodesAfter),
			"allocs_before":      refAllocs,
			"allocs_after":       kerAllocs,
			"bulk_blocks":        kernelStats.Blocks,
			"bulk_block_rows":    kernelStats.BlockRows,
			"parity":             workloadParity,
		})
	}

	return map[string]any{
		"benchmark": "solver-kernel",
		"reps":      reps,
		"workloads": perWorkload,
		// Acceptance headlines: the constraint-sparse space must be at
		// least 2x faster end to end, and Hotspot's allocations must
		// drop (per-column append growth replaced by the shared-backing
		// sink).
		"speedup_sparse":         sparseSpeedup,
		"hotspot_allocs_before":  hotspotAllocsBefore,
		"hotspot_allocs_after":   hotspotAllocsAfter,
		"hotspot_allocs_reduced": hotspotAllocsAfter < hotspotAllocsBefore,
		"parity":                 parityOK,
		"failures":               failures,
	}
}

// columnarEqual compares two columnar results cell for cell.
func columnarEqual(a, b *core.Columnar) bool {
	if a.NumSolutions() != b.NumSolutions() || len(a.Cols) != len(b.Cols) {
		return false
	}
	for vi := range a.Cols {
		for r := range a.Cols[vi] {
			if a.Cols[vi][r] != b.Cols[vi][r] {
				return false
			}
		}
	}
	return true
}
