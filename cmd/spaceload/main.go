// Command spaceload hammers a spaced service with a mixed hit/miss
// workload and reports throughput and cache behavior. By default it
// spins up an in-process server (the full HTTP path via net/http/httptest),
// so the numbers measure the service stack, not a network; point
// -server at a running daemon to load-test over the wire instead.
//
// The workload models many tuning clients sharing few kernels: workers
// draw one of -spaces distinct definitions (uniformly), submit it via
// POST /v1/spaces — a build on first contact, a cache hit after — and
// follow up with sample and contains queries on the returned id.
//
//	spaceload -spaces 8 -requests 2000 -workers 16 -out BENCH_service.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"searchspace/internal/service"
)

func main() {
	server := flag.String("server", "", "spaced base URL (default: in-process server)")
	spaces := flag.Int("spaces", 8, "distinct definitions in the workload")
	requests := flag.Int("requests", 2000, "total requests to issue")
	workers := flag.Int("workers", 16, "concurrent clients")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	out := flag.String("out", "BENCH_service.json", "result file (empty = stdout only)")
	flag.Parse()

	base := *server
	if base == "" {
		ts := httptest.NewServer(service.NewServer(service.NewRegistry(service.RegistryConfig{MaxEntries: 1024})))
		defer ts.Close()
		base = ts.URL
	}

	// Distinct definitions: same parameter shape, different constraint
	// bound, so every space is a separate content address with its own
	// construction (names alone would not — they are display labels,
	// excluded from the content address).
	bodies := make([][]byte, *spaces)
	for i := range bodies {
		bodies[i] = []byte(fmt.Sprintf(`{"problem": {
			"name": "load-%d",
			"params": [
				{"name": "block_size_x", "values": [1, 2, 4, 8, 16, 32, 64]},
				{"name": "block_size_y", "values": [1, 2, 4, 8, 16]},
				{"name": "tile", "values": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]}
			],
			"constraints": ["block_size_x * block_size_y <= %d", "tile <= block_size_x"]
		}}`, i, 16+8*i))
	}

	client := &http.Client{Timeout: time.Minute}

	// Snapshot the daemon's counters first so results are this run's
	// delta — a long-lived -server target has traffic from before.
	before, err := fetchStats(client, base)
	if err != nil {
		log.Fatal(err)
	}

	var (
		wg       sync.WaitGroup
		issued   atomic.Int64
		failures atomic.Int64
	)
	start := time.Now()
	wg.Add(*workers)
	for w := 0; w < *workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			for issued.Add(1) <= int64(*requests) {
				body := bodies[rng.Intn(len(bodies))]
				id, ok := postBuild(client, base, body)
				if !ok {
					failures.Add(1)
					continue
				}
				// Follow-up queries exercise the cached space.
				switch rng.Intn(3) {
				case 0:
					payload := fmt.Sprintf(`{"k": 4, "seed": %d}`, rng.Int63())
					if !postOK(client, base+"/v1/spaces/"+id+"/sample", []byte(payload)) {
						failures.Add(1)
					}
				case 1:
					payload := fmt.Sprintf(`{"config": {"block_size_x": %d, "block_size_y": %d, "tile": %d}}`,
						1<<rng.Intn(7), 1<<rng.Intn(5), 1+rng.Intn(10))
					if !postOK(client, base+"/v1/spaces/"+id+"/contains", []byte(payload)) {
						failures.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := fetchStats(client, base)
	if err != nil {
		log.Fatal(err)
	}

	// This run's contribution: after minus before.
	prior := make(map[string]int64, len(before.Endpoints))
	for _, ep := range before.Endpoints {
		prior[ep.Route] = ep.Count
	}
	total := int64(0)
	for _, ep := range after.Endpoints {
		total += ep.Count - prior[ep.Route]
	}
	dHits := (after.Cache.Hits + after.Cache.Joins) - (before.Cache.Hits + before.Cache.Joins)
	dMisses := after.Cache.Misses - before.Cache.Misses
	hitRatio := 0.0
	if dHits+dMisses > 0 {
		hitRatio = float64(dHits) / float64(dHits+dMisses)
	}
	result := map[string]any{
		"benchmark":        "service-load",
		"spaces":           *spaces,
		"workers":          *workers,
		"build_requests":   *requests,
		"http_requests":    total,
		"failures":         failures.Load(),
		"duration_seconds": elapsed.Seconds(),
		"req_per_sec":      float64(total) / elapsed.Seconds(),
		"hit_ratio":        hitRatio,
		"builds":           after.Cache.Builds - before.Cache.Builds,
		"build_time_hist":  after.BuildTimeHist,
		"endpoints":        after.Endpoints,
	}
	pretty, _ := json.MarshalIndent(result, "", "  ")
	fmt.Printf("%s\n", pretty)
	if *out != "" {
		if err := os.WriteFile(*out, append(pretty, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// fetchStats reads the daemon's /v1/stats snapshot.
func fetchStats(client *http.Client, base string) (service.MetricsSnapshot, error) {
	var snap service.MetricsSnapshot
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return snap, fmt.Errorf("GET /v1/stats: %w", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(raw, &snap); err != nil {
		return snap, fmt.Errorf("bad stats response: %w", err)
	}
	return snap, nil
}

// postBuild submits a definition and returns the space id.
func postBuild(client *http.Client, base string, body []byte) (string, bool) {
	resp, err := client.Post(base+"/v1/spaces", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Printf("POST /v1/spaces: %v", err)
		return "", false
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Printf("POST /v1/spaces: HTTP %d: %s", resp.StatusCode, raw)
		return "", false
	}
	var built service.BuildResponse
	if err := json.Unmarshal(raw, &built); err != nil {
		log.Printf("bad build response: %v", err)
		return "", false
	}
	return built.ID, true
}

// postOK issues a POST and reports whether it returned 200.
func postOK(client *http.Client, url string, body []byte) bool {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Printf("POST %s: %v", url, err)
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Printf("POST %s: HTTP %d", url, resp.StatusCode)
		return false
	}
	return true
}
