package main

import (
	"log"
	"math"
	"time"

	"searchspace"
	"searchspace/internal/workloads"
)

// runDeltaBench measures what incremental construction buys: on the
// Hotspot workload (the paper's flagship), it builds the full space
// once as the cached superset, then — per repetition — times producing
// a tightened variant (one added constraint) two ways: a fresh solver
// build, and Restrict over the cached superset's columns. Byte parity
// between the two is asserted on EVERY repetition (the restrict path
// must reproduce the fresh build exactly, row order included); the
// reported ratio compares the per-side minimum over -reps runs, the
// honest cost with GC and cold-cache noise discarded.
func runDeltaBench(reps int) map[string]any {
	if reps < 1 {
		reps = 1
	}

	superset := workloads.Hotspot()
	tightened := superset.Clone()
	tightened.Name = "Hotspot-tightened"
	// One realistic tightening: halve the loop-unroll range, the kind
	// of domain-knowledge cut a tuner applies between runs. The delta
	// changes the solver's degree ordering, so the restrict side pays
	// its full cost too — filter plus re-sort into the new emission
	// order — not just the fast path.
	tightened.Constraints = append(tightened.Constraints, "loop_unroll_factor_t <= 5")

	t0 := time.Now()
	parent, parentStats, err := searchspace.FromDefinition(superset).BuildWith(
		searchspace.BuildOpts{Method: searchspace.Optimized, Workers: 1})
	if err != nil {
		log.Fatalf("delta: building the superset: %v", err)
	}
	supersetSeconds := time.Since(t0).Seconds()

	var failures int64
	parityOK := true
	rebuildBest, restrictBest := math.Inf(1), math.Inf(1)
	var rowsIn, rowsKept int64
	for rep := 0; rep < reps; rep++ {
		t0 = time.Now()
		fresh, _, err := searchspace.FromDefinition(tightened.Clone()).BuildWith(
			searchspace.BuildOpts{Method: searchspace.Optimized, Workers: 1})
		if err != nil {
			log.Fatalf("delta: fresh build (rep %d): %v", rep, err)
		}
		if s := time.Since(t0).Seconds(); s < rebuildBest {
			rebuildBest = s
		}

		t0 = time.Now()
		restricted, rstats, err := searchspace.RestrictWith(parent,
			searchspace.FromDefinition(tightened.Clone()),
			searchspace.BuildOpts{Method: searchspace.Optimized})
		if err != nil {
			log.Fatalf("delta: restrict (rep %d): %v", rep, err)
		}
		if s := time.Since(t0).Seconds(); s < restrictBest {
			restrictBest = s
		}
		rowsIn, rowsKept = rstats.Nodes, int64(rstats.Valid)

		// Parity every repetition: same rows, same order, every cell.
		fc, rc := fresh.Columns(), restricted.Columns()
		same := fresh.Size() == restricted.Size() && len(fc) == len(rc)
		for p := 0; same && p < len(fc); p++ {
			for r := range fc[p] {
				if fc[p][r] != rc[p][r] {
					same = false
					break
				}
			}
		}
		if !same {
			log.Printf("delta: rep %d: restrict output differs from the fresh build", rep)
			failures++
			parityOK = false
		}
	}

	return map[string]any{
		"benchmark":        "delta-build",
		"workload":         superset.Name,
		"reps":             reps,
		"superset_valid":   parent.Size(),
		"superset_build_s": supersetSeconds,
		"superset_workers": parentStats.Workers,
		"tightened_delta":  "loop_unroll_factor_t <= 5",
		"rows_in":          rowsIn,
		"rows_kept":        rowsKept,
		"rebuild_seconds":  rebuildBest,
		"restrict_seconds": restrictBest,
		// The acceptance headline: restrict-vs-rebuild wall-time ratio,
		// min over reps on both sides.
		"speedup":  rebuildBest / restrictBest,
		"parity":   parityOK,
		"failures": failures,
	}
}
