package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"searchspace/internal/service"
)

// runOpsLoad implements -mode ops: drive one deliberately slow build
// against a daemon so an outside observer (CI, a human with `spacecli
// top`) can watch it through GET /v1/builds while it runs. The
// definition's single constraint spans all six parameters of a ~10^8
// cartesian, so the solver spends most of a second (single-threaded;
// longer on smaller machines) walking the enumeration tree while the
// sum bound keeps the materialized rows modest. After the build
// returns, the
// lifecycle journal and attribution endpoints are checked for the
// finish event (cross-linked to -request-id) and the cost row.
func runOpsLoad(client *http.Client, base, requestID string) map[string]any {
	vals := make([]string, 24)
	for i := range vals {
		vals[i] = fmt.Sprintf("%d", i+1)
	}
	list := strings.Join(vals, ", ")
	body := fmt.Sprintf(`{"problem": {
		"name": "ops-slow",
		"params": [
			{"name": "a", "values": [%s]},
			{"name": "b", "values": [%s]},
			{"name": "c", "values": [%s]},
			{"name": "d", "values": [%s]},
			{"name": "e", "values": [%s]},
			{"name": "f", "values": [%s]}
		],
		"constraints": ["a + b + c + d + e + f <= 40"]
	}}`, list, list, list, list, list, list)

	var failures int64
	start := time.Now()
	req, err := http.NewRequest("POST", base+"/v1/spaces", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", requestID)
	resp, err := client.Do(req)
	if err != nil {
		log.Fatalf("ops: POST /v1/spaces: %v (is spaced running?)", err)
	}
	var build service.BuildResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&build)
	resp.Body.Close()
	wall := time.Since(start)
	if resp.StatusCode != http.StatusOK || decodeErr != nil || build.ID == "" {
		log.Printf("ops: slow build failed: HTTP %d, decode err %v", resp.StatusCode, decodeErr)
		failures++
	}

	checks := map[string]bool{}

	// The journal must hold the finish event cross-linked to our
	// request id (skipped gracefully when -event-buffer 0).
	raw, ok := getRaw(client, base+"/v1/events?type=build_finish")
	var events service.EventsResponse
	linked := false
	if ok && json.Unmarshal(raw, &events) == nil {
		for _, e := range events.Events {
			if e.SpaceID == build.ID && e.RequestID == requestID {
				linked = true
			}
		}
	}
	checks["build_finish_event_links_request"] = linked

	// The attribution row must charge the build to the space.
	raw, ok = getRaw(client, base+"/v1/spaces/"+build.ID+"/stats")
	var usage service.SpaceUsageDoc
	checks["space_stats_attributes_build"] = ok && json.Unmarshal(raw, &usage) == nil &&
		usage.Builds >= 1 && usage.BuildNanos > 0

	// The trace ring must resolve the same request id.
	_, ok = getRaw(client, base+"/v1/trace/"+requestID)
	checks["request_trace_resolves"] = ok

	for name, passed := range checks {
		if !passed {
			log.Printf("ops: check failed: %s", name)
			failures++
		}
	}

	return map[string]any{
		"mode":               "ops",
		"request_id":         requestID,
		"space_id":           build.ID,
		"build_wall_seconds": wall.Seconds(),
		"build":              build.Build,
		"checks":             checks,
		"failures":           failures,
	}
}
