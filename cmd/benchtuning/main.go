// Command benchtuning regenerates Figures 6 and 7: the best configuration
// found over a fixed auto-tuning budget for the hotspot and GEMM kernels
// under different search-space construction methods, using random
// sampling (10 repeats) so the construction method is the only variable.
//
// Construction times are measured for real; kernel execution is simulated
// by a deterministic performance model (no GPU in this environment — see
// DESIGN.md). The budget defaults to a laptop-scale 10 seconds for
// hotspot; GEMM's budget is scaled by the valid-configuration ratio, as
// in the paper (§5.4).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"searchspace/internal/harness"
	"searchspace/internal/model"
	"searchspace/internal/report"
	"searchspace/internal/workloads"
)

func main() {
	kernel := flag.String("kernel", "hotspot", "kernel to tune: hotspot (Figure 6) or gemm (Figure 7)")
	budget := flag.Float64("budget", 10, "hotspot tuning budget in seconds (GEMM scales by valid-count ratio)")
	repeats := flag.Int("repeats", 10, "tuning repetitions to average")
	seed := flag.Int64("seed", 1, "landscape/strategy seed")
	flag.Parse()

	opt := harness.DefaultTuningOptions()
	opt.Repeats = *repeats
	opt.Seed = *seed

	switch *kernel {
	case "hotspot":
		opt.BudgetSeconds = *budget
		def := workloads.Hotspot()
		fmt.Printf("Figure 6: best configuration over a %.3gs tuning budget (%s, random sampling, %d repeats)\n\n",
			opt.BudgetSeconds, def.Name, opt.Repeats)
		run(def, opt)
	case "gemm":
		// The paper scales the GEMM budget by the valid-configuration
		// ratio between GEMM and hotspot (Table 2).
		hot, err := harness.ComputeTable2Row(workloads.Hotspot())
		if err != nil {
			log.Fatal(err)
		}
		gemm, err := harness.ComputeTable2Row(workloads.GEMM())
		if err != nil {
			log.Fatal(err)
		}
		opt.BudgetSeconds = *budget * float64(gemm.Valid) / float64(hot.Valid)
		def := workloads.GEMM()
		fmt.Printf("Figure 7: best configuration over a %.3gs tuning budget (%s, random sampling, %d repeats)\n\n",
			opt.BudgetSeconds, def.Name, opt.Repeats)
		run(def, opt)
	default:
		fmt.Fprintln(os.Stderr, "unknown kernel; use -kernel hotspot or -kernel gemm")
		os.Exit(2)
	}
}

func run(def *model.Definition, opt harness.TuningOptions) {
	curves, err := harness.RunTuning(def, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("construction time and tuning outcome per method:")
	var rows [][]string
	for _, c := range curves {
		rows = append(rows, []string{
			c.Method.String(),
			report.Seconds(c.ConstructSeconds),
			fmt.Sprintf("%.0f", c.Evaluations),
			fmt.Sprintf("%.2f", c.FinalBest),
		})
	}
	fmt.Print(report.Table([]string{"Method", "construction", "mean evals", "mean best score"}, rows))

	fmt.Println("\nbest-so-far score over time (sparkline per method; leading flat = construction):")
	for _, c := range curves {
		fmt.Printf("  %-32s %s\n", c.Method, report.Sparkline(c.Best))
	}

	fmt.Println("\nseries (time s → mean best score), every 10th sample:")
	header := []string{"t (s)"}
	for _, c := range curves {
		header = append(header, c.Method.String())
	}
	var series [][]string
	for i := 0; i < len(curves[0].Times); i += 10 {
		row := []string{fmt.Sprintf("%.2f", curves[0].Times[i])}
		for _, c := range curves {
			row = append(row, fmt.Sprintf("%.2f", c.Best[i]))
		}
		series = append(series, row)
	}
	fmt.Print(report.Table(header, series))
}
