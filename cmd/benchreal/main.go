// Command benchreal regenerates Figure 5: search space construction
// performance of every method on the eight real-world benchmarks, viewed
// against valid-configuration count (A), Cartesian size (B), as a time
// distribution (C), against sparsity (D), against parameter count (E),
// and as suite totals (F).
//
// Brute force on ATF PRL 8x8 (2.4 billion candidates — the paper's run
// took ~27 hours) is extrapolated from a measured 1M-candidate prefix
// unless -full is given.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"searchspace/internal/harness"
	"searchspace/internal/report"
	"searchspace/internal/stats"
	"searchspace/internal/workloads"
)

func main() {
	full := flag.Bool("full", false, "run brute force on every space, however long it takes")
	flag.Parse()

	opt := harness.DefaultOptions()
	if *full {
		opt.BruteCap = 0
	}
	defs := workloads.RealWorld()
	methods := harness.Fig3Methods()
	timings, err := harness.RunSuite(defs, methods, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 5: search space construction on the real-world benchmarks")
	fmt.Println()

	// Panels A/B/D/E data: the per-space measurements.
	headers := []string{"Workload", "valid", "Cartesian", "sparsity", "#params"}
	for _, m := range methods {
		headers = append(headers, m.String())
	}
	var rows [][]string
	for _, def := range defs {
		per := map[harness.Method]harness.Timing{}
		var any harness.Timing
		for _, t := range timings {
			if t.Workload == def.Name {
				per[t.Method] = t
				any = t
			}
		}
		row := []string{
			def.Name,
			report.Count(float64(any.Valid)),
			report.Count(any.Cartesian),
			fmt.Sprintf("%.4f", any.Sparsity()),
			fmt.Sprintf("%d", any.NumParams),
		}
		for _, m := range methods {
			t := per[m]
			cell := report.Seconds(t.Seconds)
			if t.Estimated {
				cell += "*"
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	fmt.Print(report.Table(headers, rows))
	fmt.Println("(* extrapolated; see -full)")

	// Panel A/B fits.
	fmt.Println("\nlog-log fits (A: on valid configurations):")
	var fitRows [][]string
	for _, m := range methods {
		fit, err := harness.FitMethod(timings, m)
		if err != nil {
			continue
		}
		sig := ""
		if fit.PValue <= 0.05 {
			sig = "significant"
		}
		fitRows = append(fitRows, []string{
			m.String(), fmt.Sprintf("%.3f", fit.Slope), fmt.Sprintf("%.3f", fit.R2),
			fmt.Sprintf("%.3g", fit.PValue), sig,
		})
	}
	fmt.Print(report.Table([]string{"Method", "slope", "R²", "p", ""}, fitRows))

	// Panel C: KDE of log-times.
	fmt.Println("\nC: distribution of log10(construction seconds):")
	for _, m := range methods {
		_, ys := harness.MethodSeries(timings, m)
		var ls []float64
		for _, y := range ys {
			if y > 0 {
				ls = append(ls, math.Log10(y))
			}
		}
		s := stats.Summarize(ls)
		at := stats.Linspace(s.Min, s.Max, 32)
		fmt.Printf("  %-32s [%s .. %s] %s\n", m,
			report.Seconds(math.Pow(10, s.Min)), report.Seconds(math.Pow(10, s.Max)),
			report.Sparkline(stats.KDE(ls, at)))
	}

	// Panel F: totals and speedups.
	fmt.Println("\nF: total construction time over the eight spaces:")
	refTotal := harness.Total(timings, harness.Optimized)
	var totRows [][]string
	for _, m := range methods {
		t := harness.Total(timings, m)
		totRows = append(totRows, []string{
			m.String(), report.Seconds(t), fmt.Sprintf("%.0fx", t/refTotal),
		})
	}
	fmt.Print(report.Table([]string{"Method", "total", "vs optimized"}, totRows))
}
