// Command ablprobe isolates the contribution of each §4.3 optimization
// (variable ordering, preprocessing, partial checks) by constructing the
// real-world spaces with individual optimizations disabled. It backs the
// ablation section of EXPERIMENTS.md; `go test -bench=Ablation` measures
// the same on Hotspot through the benchmark harness.
package main

import (
	"fmt"
	"time"

	"searchspace/internal/core"
	"searchspace/internal/report"
	"searchspace/internal/workloads"
)

func main() {
	configs := []struct {
		name string
		opt  core.Options
	}{
		{"all optimizations", core.Options{SortVariables: true, Preprocess: true, PartialChecks: true}},
		{"no variable sort", core.Options{Preprocess: true, PartialChecks: true}},
		{"no preprocessing", core.Options{SortVariables: true, PartialChecks: true}},
		{"no partial checks", core.Options{SortVariables: true, Preprocess: true}},
		{"none", core.Options{}},
	}
	var rows [][]string
	for _, def := range workloads.RealWorld() {
		p, err := def.ToProblem()
		if err != nil {
			panic(err)
		}
		row := []string{def.Name}
		for _, c := range configs {
			best := time.Duration(1 << 62)
			for r := 0; r < 3; r++ {
				start := time.Now()
				p.Compile(c.opt).Count()
				if el := time.Since(start); el < best {
					best = el
				}
			}
			row = append(row, report.Seconds(best.Seconds()))
		}
		rows = append(rows, row)
	}
	headers := []string{"Workload"}
	for _, c := range configs {
		headers = append(headers, c.name)
	}
	fmt.Println("Ablation: construction+count time with individual optimizations disabled")
	fmt.Println()
	fmt.Print(report.Table(headers, rows))
}
