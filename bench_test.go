// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5). Each benchmark measures the work behind one exhibit;
// the cmd/ binaries print the full rows/series. Heavier methods run on
// representative subsets so `go test -bench=. ./...` stays interactive —
// the binaries accept flags for full-scale runs:
//
//	Table 1  — cmd/benchtables -table 1
//	Table 2  — cmd/benchtables -table 2
//	Figure 2 — cmd/benchsynthetic -figure 2
//	Figure 3 — cmd/benchsynthetic -figure 3
//	Figure 4 — cmd/benchsynthetic -figure 4
//	Figure 5 — cmd/benchreal
//	Figure 6 — cmd/benchtuning -kernel hotspot
//	Figure 7 — cmd/benchtuning -kernel gemm
package searchspace

import (
	"testing"

	"searchspace/internal/core"
	"searchspace/internal/harness"
	"searchspace/internal/model"
	"searchspace/internal/workloads"
)

// ablationOptions selects which §4.3 optimizations the ablation
// benchmarks enable.
type ablationOptions struct {
	Sort, Preprocess, Partial bool
}

func (o ablationOptions) toCore() core.Options {
	return core.Options{
		SortVariables: o.Sort,
		Preprocess:    o.Preprocess,
		PartialChecks: o.Partial,
	}
}

func benchSuite(b *testing.B, defs []*model.Definition, m harness.Method, opt harness.Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		timings, err := harness.RunSuite(defs, []harness.Method{m}, opt)
		if err != nil {
			b.Fatal(err)
		}
		total := harness.Total(timings, m)
		b.ReportMetric(total, "suite-s/op")
	}
}

// BenchmarkTable1Overview regenerates the qualitative overview table.
func BenchmarkTable1Overview(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Characteristics measures deriving Table 2 for the eight
// real-world spaces (counting every valid configuration with the
// optimized solver).
func BenchmarkTable2Characteristics(b *testing.B) {
	defs := workloads.RealWorld()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, _, err := harness.ComputeTable2(defs)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkFig2SyntheticCharacteristics measures resolving all 78
// synthetic spaces and collecting their distribution data.
func BenchmarkFig2SyntheticCharacteristics(b *testing.B) {
	defs := workloads.SyntheticSuite()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := harness.ComputeFig2(defs)
		if err != nil {
			b.Fatal(err)
		}
		if len(data.Valid) != 78 {
			b.Fatal("incomplete data")
		}
	}
}

// fig3Defs is the synthetic subset used by the per-method Figure 3
// benchmarks (the full 78-space run is cmd/benchsynthetic -figure 3).
func fig3Defs() []*model.Definition { return workloads.SyntheticSuite()[:20] }

func BenchmarkFig3SyntheticBruteForce(b *testing.B) {
	benchSuite(b, fig3Defs(), harness.BruteForce, harness.DefaultOptions())
}

func BenchmarkFig3SyntheticOriginal(b *testing.B) {
	benchSuite(b, fig3Defs(), harness.Original, harness.DefaultOptions())
}

func BenchmarkFig3SyntheticChainOfTrees(b *testing.B) {
	benchSuite(b, fig3Defs(), harness.ChainCompiled, harness.DefaultOptions())
}

func BenchmarkFig3SyntheticChainInterpreted(b *testing.B) {
	benchSuite(b, fig3Defs(), harness.ChainInterp, harness.DefaultOptions())
}

func BenchmarkFig3SyntheticOptimized(b *testing.B) {
	benchSuite(b, fig3Defs(), harness.Optimized, harness.DefaultOptions())
}

// BenchmarkFig4IterSolve measures the blocking-clause (PySMT/Z3-style)
// enumeration on the reduced synthetic suite, the regime where its
// superlinear scaling shows (Figure 4).
func BenchmarkFig4IterSolve(b *testing.B) {
	defs := workloads.SyntheticReducedSuite()[:10]
	opt := harness.DefaultOptions()
	opt.IterCap = 3000
	benchSuite(b, defs, harness.IterSAT, opt)
}

func BenchmarkFig4BruteForce(b *testing.B) {
	benchSuite(b, workloads.SyntheticReducedSuite()[:10], harness.BruteForce, harness.DefaultOptions())
}

func BenchmarkFig4Optimized(b *testing.B) {
	benchSuite(b, workloads.SyntheticReducedSuite()[:10], harness.Optimized, harness.DefaultOptions())
}

// Figure 5 benchmarks: each method over the eight real-world spaces.
// Brute force extrapolates ATF PRL 8x8 (2.4G candidates) from a measured
// 1M-candidate prefix, exactly as cmd/benchreal does by default.

func BenchmarkFig5RealBruteForce(b *testing.B) {
	benchSuite(b, workloads.RealWorld(), harness.BruteForce, harness.DefaultOptions())
}

func BenchmarkFig5RealOriginal(b *testing.B) {
	benchSuite(b, workloads.RealWorld(), harness.Original, harness.DefaultOptions())
}

func BenchmarkFig5RealChainOfTrees(b *testing.B) {
	benchSuite(b, workloads.RealWorld(), harness.ChainCompiled, harness.DefaultOptions())
}

func BenchmarkFig5RealChainInterpreted(b *testing.B) {
	benchSuite(b, workloads.RealWorld(), harness.ChainInterp, harness.DefaultOptions())
}

func BenchmarkFig5RealOptimized(b *testing.B) {
	benchSuite(b, workloads.RealWorld(), harness.Optimized, harness.DefaultOptions())
}

// Per-workload construction benchmarks with the optimized solver: the
// headline per-space sub-second claim of §5.3.7.

func benchConstructOptimized(b *testing.B, def *model.Definition) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		col, err := harness.Construct(def, harness.Optimized)
		if err != nil {
			b.Fatal(err)
		}
		if col.NumSolutions() == 0 {
			b.Fatal("empty space")
		}
	}
}

func BenchmarkConstructDedispersion(b *testing.B) {
	benchConstructOptimized(b, workloads.Dedispersion())
}
func BenchmarkConstructExpDist(b *testing.B) { benchConstructOptimized(b, workloads.ExpDist()) }
func BenchmarkConstructHotspot(b *testing.B) { benchConstructOptimized(b, workloads.Hotspot()) }
func BenchmarkConstructGEMM(b *testing.B)    { benchConstructOptimized(b, workloads.GEMM()) }
func BenchmarkConstructMicroHH(b *testing.B) { benchConstructOptimized(b, workloads.MicroHH()) }
func BenchmarkConstructPRL8x8(b *testing.B)  { benchConstructOptimized(b, workloads.PRL(8)) }

// BenchmarkFig6HotspotTuning measures the end-to-end §5.4 experiment on
// hotspot at reduced scale (2s budget, 2 repeats).
func BenchmarkFig6HotspotTuning(b *testing.B) {
	opt := harness.DefaultTuningOptions()
	opt.BudgetSeconds = 2
	opt.Repeats = 2
	def := workloads.Hotspot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves, err := harness.RunTuning(def, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(curves) != 3 {
			b.Fatal("missing curves")
		}
	}
}

// BenchmarkFig7GEMMTuning measures the same experiment on GEMM with the
// budget scaled by the valid-configuration ratio, as in the paper.
func BenchmarkFig7GEMMTuning(b *testing.B) {
	opt := harness.DefaultTuningOptions()
	opt.BudgetSeconds = 2 * 121704.0 / 347628.0
	opt.Repeats = 2
	def := workloads.GEMM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves, err := harness.RunTuning(def, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(curves) != 3 {
			b.Fatal("missing curves")
		}
	}
}

// Ablation benchmarks: the individual §4.3 optimizations on Hotspot,
// isolating what each contributes (DESIGN.md's ablation entry).

func benchAblation(b *testing.B, mutate func(*ablationOptions)) {
	b.Helper()
	def := workloads.Hotspot()
	p, err := def.ToProblem()
	if err != nil {
		b.Fatal(err)
	}
	opts := ablationOptions{Sort: true, Preprocess: true, Partial: true}
	mutate(&opts)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		compiled := p.Compile(opts.toCore())
		if compiled.Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkAblationAllOptimizations(b *testing.B) {
	benchAblation(b, func(*ablationOptions) {})
}

func BenchmarkAblationNoVariableSort(b *testing.B) {
	benchAblation(b, func(o *ablationOptions) { o.Sort = false })
}

func BenchmarkAblationNoPreprocessing(b *testing.B) {
	benchAblation(b, func(o *ablationOptions) { o.Preprocess = false })
}

func BenchmarkAblationNoPartialChecks(b *testing.B) {
	benchAblation(b, func(o *ablationOptions) { o.Partial = false })
}

func BenchmarkAblationNoneEnabled(b *testing.B) {
	benchAblation(b, func(o *ablationOptions) { o.Sort, o.Preprocess, o.Partial = false, false, false })
}

// Solver hot-path benchmarks: the enumeration kernel alone (compile
// excluded from the timed region would hide preprocessing wins, so the
// Compile happens once outside the loop and only enumeration is
// measured). The *Ref variants run the retained pre-kernel closure
// path, so `go test -bench 'SolveColumnar|ForEach'` shows the
// before/after directly.

func compiledFor(b *testing.B, def *model.Definition) *core.Compiled {
	b.Helper()
	p, err := def.ToProblem()
	if err != nil {
		b.Fatal(err)
	}
	return p.Compile(core.DefaultOptions())
}

func benchForEach(b *testing.B, def *model.Definition) {
	c := compiledFor(b, def)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		c.ForEach(func([]int32) bool { n++; return true })
		if n == 0 {
			b.Fatal("empty space")
		}
	}
}

func benchSolveColumnar(b *testing.B, def *model.Definition, ref bool) {
	c := compiledFor(b, def)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var col *core.Columnar
		if ref {
			col, _, _ = c.SolveColumnarRef(nil)
		} else {
			col = c.SolveColumnar()
		}
		if col.NumSolutions() == 0 {
			b.Fatal("empty space")
		}
	}
}

func BenchmarkForEachHotspot(b *testing.B) { benchForEach(b, workloads.Hotspot()) }
func BenchmarkForEachGEMM(b *testing.B)    { benchForEach(b, workloads.GEMM()) }

func BenchmarkSolveColumnarHotspot(b *testing.B) {
	benchSolveColumnar(b, workloads.Hotspot(), false)
}
func BenchmarkSolveColumnarGEMM(b *testing.B) {
	benchSolveColumnar(b, workloads.GEMM(), false)
}
func BenchmarkSolveColumnarRefHotspot(b *testing.B) {
	benchSolveColumnar(b, workloads.Hotspot(), true)
}
func BenchmarkSolveColumnarRefGEMM(b *testing.B) {
	benchSolveColumnar(b, workloads.GEMM(), true)
}
