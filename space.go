package searchspace

import (
	"fmt"
	"math/rand"

	"searchspace/internal/model"
	"searchspace/internal/space"
	"searchspace/internal/value"
)

// SearchSpace is a fully resolved search space (§4.4 of the paper): every
// valid configuration is materialized and indexed, so membership tests,
// neighbor queries and sampling are cheap and exact — information a
// dynamic (sample-then-check) representation cannot provide reliably.
type SearchSpace struct {
	s   *space.Space
	def *model.Definition
}

// Config is one valid configuration as a name→value map. Values are
// plain Go types: int64, float64, bool, or string.
type Config map[string]any

// Size returns the number of valid configurations.
func (ss *SearchSpace) Size() int { return ss.s.Size() }

// NumParams returns the number of tunable parameters.
func (ss *SearchSpace) NumParams() int { return ss.s.NumParams() }

// Names returns the parameter names in declaration order.
func (ss *SearchSpace) Names() []string { return ss.s.Names() }

// Get returns configuration i as a map.
func (ss *SearchSpace) Get(i int) Config {
	m := ss.s.RowMap(i)
	out := make(Config, len(m))
	for k, v := range m {
		out[k] = v.Native()
	}
	return out
}

// GetValues returns configuration i's values in declaration order.
func (ss *SearchSpace) GetValues(i int) []any {
	row := ss.s.Row(i)
	out := make([]any, len(row))
	for k, v := range row {
		out[k] = v.Native()
	}
	return out
}

// IndexOf returns the row of the given configuration, or ok=false when it
// is not part of the space (invalid or out of domain).
func (ss *SearchSpace) IndexOf(cfg Config) (int, bool) {
	vals := make([]value.Value, len(ss.def.Params))
	for i, p := range ss.def.Params {
		raw, ok := cfg[p.Name]
		if !ok {
			return 0, false
		}
		v, err := toValue(raw)
		if err != nil {
			return 0, false
		}
		vals[i] = v
	}
	return ss.s.LookupValues(vals)
}

// Contains reports whether cfg is a valid configuration.
func (ss *SearchSpace) Contains(cfg Config) bool {
	_, ok := ss.IndexOf(cfg)
	return ok
}

// ParamBounds is one parameter's range across valid configurations.
type ParamBounds struct {
	Name string
	// Min/Max are meaningful only when Numeric.
	Min, Max       float64
	Numeric        bool
	DistinctValues int
}

// TrueBounds returns the per-parameter bounds over valid configurations
// only — typically tighter than the declared domains once constraints
// have been applied.
func (ss *SearchSpace) TrueBounds() []ParamBounds {
	in := ss.s.TrueBounds()
	out := make([]ParamBounds, len(in))
	for i, b := range in {
		out[i] = ParamBounds{
			Name: b.Name, Min: b.Min, Max: b.Max,
			Numeric: b.Numeric, DistinctValues: b.DistinctValues,
		}
	}
	return out
}

// ActiveValues returns the distinct values the named parameter takes in
// valid configurations.
func (ss *SearchSpace) ActiveValues(name string) ([]any, error) {
	vals, ok := ss.s.ActiveValues(name)
	if !ok {
		return nil, fmt.Errorf("searchspace: unknown parameter %q", name)
	}
	out := make([]any, len(vals))
	for i, v := range vals {
		out[i] = v.Native()
	}
	return out, nil
}

// SampleUniform draws k distinct configuration rows uniformly.
func (ss *SearchSpace) SampleUniform(rng *rand.Rand, k int) []int {
	return ss.s.SampleUniform(rng, k)
}

// SampleStratified draws one row from each of k contiguous strata of the
// enumeration order.
func (ss *SearchSpace) SampleStratified(rng *rand.Rand, k int) []int {
	return ss.s.SampleStratified(rng, k)
}

// SampleLHS draws k rows by Latin Hypercube Sampling over the valid
// marginals (O(k·n·p); intended for moderate k).
func (ss *SearchSpace) SampleLHS(rng *rand.Rand, k int) []int {
	return ss.s.SampleLHS(rng, k)
}

// Indices returns row i's per-parameter value indices into the declared
// domains — the genotype form optimizers recombine. Use Lookup to map a
// recombined index vector back to a row.
func (ss *SearchSpace) Indices(i int) []int32 {
	return ss.s.Indices(i)
}

// Lookup returns the row whose per-parameter value indices equal idx, or
// ok=false when that combination is not a valid configuration.
func (ss *SearchSpace) Lookup(idx []int32) (int, bool) {
	return ss.s.Lookup(idx)
}

// LookupRows resolves a batch of genotypes (per-parameter index vectors,
// the form Indices returns and optimizers recombine) to rows in one
// call. The row index is built at most once and one key buffer serves
// the whole batch, so per-element cost is a single map probe. Element i
// is -1 when batch[i] is not a valid configuration.
func (ss *SearchSpace) LookupRows(batch [][]int32) []int {
	return ss.s.LookupRows(batch)
}

// HammingNeighbors returns the rows differing from row i in exactly one
// parameter.
func (ss *SearchSpace) HammingNeighbors(i int) []int {
	return ss.s.HammingNeighbors(i)
}

// AdjacentNeighbors returns the rows differing from row i in exactly one
// parameter by one position in its declared value order.
func (ss *SearchSpace) AdjacentNeighbors(i int) []int {
	return ss.s.AdjacentNeighbors(i)
}

// RandomNeighbor returns a uniformly random Hamming neighbor of row i.
func (ss *SearchSpace) RandomNeighbor(rng *rand.Rand, i int) (int, bool) {
	return ss.s.RandomNeighbor(rng, i)
}
