// Package searchspace constructs constrained auto-tuning search spaces.
//
// It is a Go implementation of the construction pipeline from
// "Efficient Construction of Large Search Spaces for Auto-Tuning"
// (Willemsen, van Nieuwpoort, van Werkhoven; ICPP '25): tunable
// parameters with finite value lists plus Python-style constraint
// expressions are resolved — by an optimized all-solutions CSP solver —
// into a fully materialized SearchSpace that supports O(1) membership
// tests, true parameter bounds, uniform / stratified / Latin-Hypercube
// sampling, and neighbor queries for optimization algorithms.
//
// The package also exposes every baseline construction method evaluated
// in the paper (brute force, the unoptimized CSP solver, chain-of-trees
// in compiled and interpreted variants, and blocking-clause enumeration)
// behind the same API, selected with a Method, so applications and
// benchmarks can compare them on identical inputs.
//
// A minimal end-to-end use:
//
//	p := searchspace.NewProblem("hotspot")
//	p.AddParam("block_size_x", 1, 2, 4, 8, 16, 32, 64, 128, 256)
//	p.AddParam("block_size_y", 1, 2, 4, 8, 16, 32)
//	p.AddConstraint("32 <= block_size_x * block_size_y <= 1024")
//	ss, err := p.Build(searchspace.Optimized)
package searchspace

import (
	"errors"
	"fmt"
	"time"

	"searchspace/internal/bruteforce"
	"searchspace/internal/chaintrees"
	"searchspace/internal/core"
	"searchspace/internal/itersolve"
	"searchspace/internal/model"
	"searchspace/internal/naive"
	"searchspace/internal/space"
	"searchspace/internal/value"
)

// Method selects a search-space construction algorithm.
type Method int

const (
	// Optimized is the paper's contribution: the optimized CSP solver
	// with constraint parsing/decomposition, specific constraints with
	// preprocessing, degree-ordered variables, compiled predicates, and
	// partial-assignment rejection.
	Optimized Method = iota
	// Original is the unoptimized CSP solver baseline (vanilla
	// python-constraint): recursive backtracking, whole-constraint
	// interpreted evaluation, no preprocessing.
	Original
	// BruteForce filters the full Cartesian product through the raw
	// constraints.
	BruteForce
	// ChainOfTrees is the ATF-style grouped-tree construction with
	// compiled constraint evaluation (the C++ ATF analogue).
	ChainOfTrees
	// ChainOfTreesInterpreted evaluates constraints by tree-walking (the
	// pyATF analogue).
	ChainOfTreesInterpreted
	// IterativeSAT emulates one-solution-at-a-time solvers (PySMT/Z3):
	// solve, add a blocking clause, repeat.
	IterativeSAT
)

var methodNames = map[Method]string{
	Optimized:               "optimized",
	Original:                "original",
	BruteForce:              "brute-force",
	ChainOfTrees:            "chain-of-trees",
	ChainOfTreesInterpreted: "chain-of-trees-interpreted",
	IterativeSAT:            "iterative-sat",
}

// String returns the method's report label.
func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Methods lists all construction methods in report order.
func Methods() []Method {
	return []Method{BruteForce, Original, ChainOfTrees, ChainOfTreesInterpreted, IterativeSAT, Optimized}
}

// Parallelizable reports whether the method's construction backend can
// use more than one worker. The exhaustive baselines (brute-force,
// original, iterative-sat) are sequential by design — their value is
// faithfully reproducing the paper's unoptimized loops.
func (m Method) Parallelizable() bool {
	switch m {
	case Optimized, ChainOfTrees, ChainOfTreesInterpreted:
		return true
	}
	return false
}

// MethodByName resolves a report label (e.g. "optimized",
// "chain-of-trees") back to its Method.
func MethodByName(name string) (Method, bool) {
	for m, s := range methodNames {
		if s == name {
			return m, true
		}
	}
	return 0, false
}

// Problem accumulates parameters and constraints. Methods record the
// first error and Build reports it, so call sites can chain adds without
// per-call error handling (mirroring how tuning scripts declare spaces).
type Problem struct {
	def *model.Definition
	err error
}

// NewProblem creates an empty problem with a report label.
func NewProblem(name string) *Problem {
	return &Problem{def: &model.Definition{Name: name}}
}

// FromDefinition wraps an existing internal definition into a Problem.
// The definition is used as-is (not copied); it is the entry point for
// callers — the workload suites, benchmarks, and the service codec —
// that already hold a model.Definition.
func FromDefinition(def *model.Definition) *Problem {
	return &Problem{def: def}
}

// Definition returns the problem's underlying definition. The returned
// value is shared with the Problem, so treat it as read-only; use
// Definition().Clone() before mutating.
func (p *Problem) Definition() *model.Definition { return p.def }

// Name returns the problem's label.
func (p *Problem) Name() string { return p.def.Name }

// AddParam declares a tunable parameter. Values may be any mix of Go
// integers, floats, bools and strings.
func (p *Problem) AddParam(name string, values ...any) *Problem {
	if p.err != nil {
		return p
	}
	if len(values) == 0 {
		p.err = fmt.Errorf("searchspace: parameter %q needs at least one value", name)
		return p
	}
	vals := make([]value.Value, len(values))
	for i, v := range values {
		vv, err := toValue(v)
		if err != nil {
			p.err = fmt.Errorf("searchspace: parameter %q: %w", name, err)
			return p
		}
		vals[i] = vv
	}
	p.def.Params = append(p.def.Params, model.Param{Name: name, Values: vals})
	return p
}

// AddParamInts declares an integer parameter from a slice.
func (p *Problem) AddParamInts(name string, values []int) *Problem {
	anyVals := make([]any, len(values))
	for i, v := range values {
		anyVals[i] = v
	}
	return p.AddParam(name, anyVals...)
}

// AddConstraint registers a constraint written in the Python expression
// subset (e.g. "32 <= block_size_x * block_size_y <= 1024").
func (p *Problem) AddConstraint(src string) *Problem {
	if p.err != nil {
		return p
	}
	p.def.Constraints = append(p.def.Constraints, src)
	return p
}

// AddConstraintFunc registers a native Go predicate over the named
// parameters; args arrive in the order of vars as int64/float64/bool/
// string.
func (p *Problem) AddConstraintFunc(vars []string, fn func(args []any) bool) *Problem {
	if p.err != nil {
		return p
	}
	if fn == nil {
		p.err = fmt.Errorf("searchspace: nil constraint function")
		return p
	}
	varsCopy := append([]string(nil), vars...)
	p.def.GoConstraints = append(p.def.GoConstraints, model.GoConstraint{
		Vars: varsCopy,
		Fn: func(vals []value.Value) bool {
			args := make([]any, len(vals))
			for i, v := range vals {
				args[i] = v.Native()
			}
			return fn(args)
		},
	})
	return p
}

// CartesianSize returns the unconstrained configuration count.
func (p *Problem) CartesianSize() float64 { return p.def.CartesianSize() }

// BuildStats reports how a construction run went.
type BuildStats struct {
	Method   Method
	Duration time.Duration
	// Cartesian is the unconstrained size; Valid the resolved size.
	Cartesian float64
	Valid     int
	// Workers is the worker budget the construction ran under: the
	// resolved BuildOpts.Workers for parallel-capable methods, 1 for
	// the sequential baselines. The scheduler may engage fewer
	// goroutines than the budget when the space is too small to split
	// that wide; the output is identical either way.
	Workers int
	// Nodes is the number of search-tree nodes the enumeration kernel
	// actually visited, reported for single-worker optimized builds
	// (the paper's measurement configuration); 0 for other methods and
	// for parallel runs. With bulk tail expansion this is typically far
	// below the node count a per-node walk would pay — the gap is the
	// kernel's structural win on constraint-sparse spaces. Nodes counts
	// visited nodes plus emitted tail blocks; Blocks breaks out the
	// block component so telemetry can show how much of the walk the
	// bulk expansion skipped.
	Nodes  int64
	Blocks int64
}

// BuildOpts configures one construction run: which algorithm, how many
// workers, and how the run can be cancelled. It is the single entry
// point every other Build* form wraps.
type BuildOpts struct {
	// Method selects the construction algorithm; the zero value is
	// Optimized, the paper's contribution and the service default.
	Method Method
	// Workers is the number of goroutines enumerating concurrently for
	// methods with a parallel backend (optimized and both chain-of-trees
	// modes). <= 0 selects GOMAXPROCS; 1 forces the sequential path.
	// Output is byte-identical to sequential at every worker count.
	// Methods without a parallel backend ignore it.
	Workers int
	// Stop is polled cooperatively during construction; a true return
	// abandons the build with ErrCanceled. All parallel-capable methods
	// and the brute-force baseline poll it mid-build; original and
	// iterative-sat check it only before starting, since their value is
	// faithfully reproducing the paper's unoptimized construction loops
	// and the service admission-bounds their input size. Nil never
	// cancels. Stop may be called from several goroutines at once.
	Stop func() bool
	// OnProgress, when set, observes enumeration progress (completed
	// and total scheduler tasks): one upfront call with done 0 and the
	// total, then one per completed task. Calls may arrive concurrently
	// from worker goroutines.
	OnProgress func(done, total int)
	// Progress, when set, receives live node/row counters from inside
	// the optimized solver's enumeration kernel — finer-grained than
	// OnProgress (which only ticks at task boundaries) and updated even
	// by single-worker runs. Methods that do not use the kernel leave
	// it untouched.
	Progress *ProgressSink
}

// ProgressSink re-exports the kernel's atomic live-progress counters
// so callers outside the internal tree can construct one and watch a
// build move; see BuildOpts.Progress.
type ProgressSink = core.ProgressSink

// preflight is the shared Build* preamble: surface a deferred
// accumulation error, validate the definition, and seed the stats.
func (p *Problem) preflight(m Method) (BuildStats, error) {
	stats := BuildStats{Method: m, Cartesian: p.def.CartesianSize(), Workers: 1}
	if p.err != nil {
		return stats, p.err
	}
	if err := p.def.Validate(); err != nil {
		return stats, err
	}
	return stats, nil
}

// Build resolves the search space with the chosen method, sequentially.
func (p *Problem) Build(m Method) (*SearchSpace, error) {
	ss, _, err := p.BuildWith(BuildOpts{Method: m, Workers: 1})
	return ss, err
}

// BuildParallel resolves the search space with the optimized solver
// using up to workers goroutines (0 selects GOMAXPROCS). The result is
// identical to Build(Optimized), including configuration order.
func (p *Problem) BuildParallel(workers int) (*SearchSpace, BuildStats, error) {
	return p.BuildWith(BuildOpts{Method: Optimized, Workers: workers})
}

// BuildTimed resolves the search space sequentially and reports timing,
// the measurement primitive behind every figure in the evaluation (the
// paper's numbers are single-core, so the legacy entry points pin
// Workers to 1; use BuildWith for the parallel engine).
func (p *Problem) BuildTimed(m Method) (*SearchSpace, BuildStats, error) {
	return p.BuildWith(BuildOpts{Method: m, Workers: 1})
}

// ErrCanceled reports a construction abandoned because its stop
// function fired.
var ErrCanceled = errors.New("searchspace: construction canceled")

// BuildTimedStop is BuildTimed with cooperative cancellation; see
// BuildOpts.Stop for which methods cancel mid-build.
func (p *Problem) BuildTimedStop(m Method, stop func() bool) (*SearchSpace, BuildStats, error) {
	return p.BuildWith(BuildOpts{Method: m, Workers: 1, Stop: stop})
}

// BuildWith resolves the search space under one execution config. It is
// THE build path — every other Build* form is a thin wrapper — so
// cancellation, parallelism, and timing behave identically no matter
// how a build is requested. Parallel output is byte-identical to
// sequential for every method and worker count; only the wall time
// changes.
func (p *Problem) BuildWith(o BuildOpts) (*SearchSpace, BuildStats, error) {
	stats, err := p.preflight(o.Method)
	if err != nil {
		return nil, stats, err
	}
	ex := core.Exec{Workers: o.Workers, Stop: o.Stop, OnProgress: o.OnProgress, Sink: o.Progress}
	start := time.Now()
	col, workers, es, err := construct(p.def, o.Method, ex)
	stats.Duration = time.Since(start)
	stats.Workers = workers
	stats.Nodes = es.Nodes + es.Blocks
	stats.Blocks = es.Blocks
	if err != nil {
		return nil, stats, err
	}
	// A stop firing after construct completed is ignored: the expensive
	// work is done, so publishing the result beats discarding it.
	sp, err := space.FromColumnar(p.def, col)
	if err != nil {
		return nil, stats, err
	}
	stats.Valid = sp.Size()
	return &SearchSpace{s: sp, def: p.def}, stats, nil
}

// construct dispatches to the selected construction backend; all return
// the same columnar format. The returned worker count is the
// parallelism the backend actually applied (1 for the inherently
// sequential baselines, whatever the Exec resolved to otherwise); the
// EnumStats carry the kernel's visited-node and emitted-block counts
// for single-worker optimized runs, zero everywhere else.
func construct(def *model.Definition, m Method, ex core.Exec) (*core.Columnar, int, core.EnumStats, error) {
	var none core.EnumStats
	if ex.Stop != nil && ex.Stop() {
		return nil, 1, none, ErrCanceled
	}
	switch m {
	case Optimized:
		prob, err := def.ToProblem()
		if err != nil {
			return nil, 1, none, err
		}
		compiled := prob.Compile(core.DefaultOptions())
		if ex.EffectiveWorkers() == 1 {
			if ex.OnProgress != nil {
				ex.OnProgress(0, 1)
			}
			col, es, canceled := compiled.SolveColumnarStatsSink(ex.Stop, ex.Sink)
			if canceled {
				return nil, 1, none, ErrCanceled
			}
			if ex.OnProgress != nil {
				ex.OnProgress(1, 1)
			}
			return col, 1, es, nil
		}
		col, canceled := compiled.SolveColumnarExec(ex)
		if canceled {
			return nil, ex.EffectiveWorkers(), none, ErrCanceled
		}
		return col, ex.EffectiveWorkers(), none, nil
	case Original:
		col, err := naive.Solve(def)
		return col, 1, none, err
	case BruteForce:
		col, _, err := bruteforce.SolveStop(def, ex.Stop)
		if errors.Is(err, bruteforce.ErrCanceled) {
			return nil, 1, none, ErrCanceled
		}
		return col, 1, none, err
	case ChainOfTrees, ChainOfTreesInterpreted:
		mode := chaintrees.ModeCompiled
		if m == ChainOfTreesInterpreted {
			mode = chaintrees.ModeInterpreted
		}
		chain, err := chaintrees.BuildExec(def, mode, ex)
		if errors.Is(err, chaintrees.ErrCanceled) {
			return nil, ex.EffectiveWorkers(), none, ErrCanceled
		}
		if err != nil {
			return nil, ex.EffectiveWorkers(), none, err
		}
		return chain.ToColumnar(), ex.EffectiveWorkers(), none, nil
	case IterativeSAT:
		col, _, err := itersolve.Solve(def)
		return col, 1, none, err
	}
	return nil, 1, none, fmt.Errorf("searchspace: unknown method %v", m)
}

func toValue(v any) (value.Value, error) {
	switch v.(type) {
	case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64,
		float32, float64, bool, string:
		return value.Of(v), nil
	}
	return value.Value{}, fmt.Errorf("unsupported value type %T", v)
}
