// Package searchspace constructs constrained auto-tuning search spaces.
//
// It is a Go implementation of the construction pipeline from
// "Efficient Construction of Large Search Spaces for Auto-Tuning"
// (Willemsen, van Nieuwpoort, van Werkhoven; ICPP '25): tunable
// parameters with finite value lists plus Python-style constraint
// expressions are resolved — by an optimized all-solutions CSP solver —
// into a fully materialized SearchSpace that supports O(1) membership
// tests, true parameter bounds, uniform / stratified / Latin-Hypercube
// sampling, and neighbor queries for optimization algorithms.
//
// The package also exposes every baseline construction method evaluated
// in the paper (brute force, the unoptimized CSP solver, chain-of-trees
// in compiled and interpreted variants, and blocking-clause enumeration)
// behind the same API, selected with a Method, so applications and
// benchmarks can compare them on identical inputs.
//
// A minimal end-to-end use:
//
//	p := searchspace.NewProblem("hotspot")
//	p.AddParam("block_size_x", 1, 2, 4, 8, 16, 32, 64, 128, 256)
//	p.AddParam("block_size_y", 1, 2, 4, 8, 16, 32)
//	p.AddConstraint("32 <= block_size_x * block_size_y <= 1024")
//	ss, err := p.Build(searchspace.Optimized)
package searchspace

import (
	"errors"
	"fmt"
	"time"

	"searchspace/internal/bruteforce"
	"searchspace/internal/chaintrees"
	"searchspace/internal/core"
	"searchspace/internal/itersolve"
	"searchspace/internal/model"
	"searchspace/internal/naive"
	"searchspace/internal/space"
	"searchspace/internal/value"
)

// Method selects a search-space construction algorithm.
type Method int

const (
	// Optimized is the paper's contribution: the optimized CSP solver
	// with constraint parsing/decomposition, specific constraints with
	// preprocessing, degree-ordered variables, compiled predicates, and
	// partial-assignment rejection.
	Optimized Method = iota
	// Original is the unoptimized CSP solver baseline (vanilla
	// python-constraint): recursive backtracking, whole-constraint
	// interpreted evaluation, no preprocessing.
	Original
	// BruteForce filters the full Cartesian product through the raw
	// constraints.
	BruteForce
	// ChainOfTrees is the ATF-style grouped-tree construction with
	// compiled constraint evaluation (the C++ ATF analogue).
	ChainOfTrees
	// ChainOfTreesInterpreted evaluates constraints by tree-walking (the
	// pyATF analogue).
	ChainOfTreesInterpreted
	// IterativeSAT emulates one-solution-at-a-time solvers (PySMT/Z3):
	// solve, add a blocking clause, repeat.
	IterativeSAT
)

var methodNames = map[Method]string{
	Optimized:               "optimized",
	Original:                "original",
	BruteForce:              "brute-force",
	ChainOfTrees:            "chain-of-trees",
	ChainOfTreesInterpreted: "chain-of-trees-interpreted",
	IterativeSAT:            "iterative-sat",
}

// String returns the method's report label.
func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Methods lists all construction methods in report order.
func Methods() []Method {
	return []Method{BruteForce, Original, ChainOfTrees, ChainOfTreesInterpreted, IterativeSAT, Optimized}
}

// MethodByName resolves a report label (e.g. "optimized",
// "chain-of-trees") back to its Method.
func MethodByName(name string) (Method, bool) {
	for m, s := range methodNames {
		if s == name {
			return m, true
		}
	}
	return 0, false
}

// Problem accumulates parameters and constraints. Methods record the
// first error and Build reports it, so call sites can chain adds without
// per-call error handling (mirroring how tuning scripts declare spaces).
type Problem struct {
	def *model.Definition
	err error
}

// NewProblem creates an empty problem with a report label.
func NewProblem(name string) *Problem {
	return &Problem{def: &model.Definition{Name: name}}
}

// FromDefinition wraps an existing internal definition into a Problem.
// The definition is used as-is (not copied); it is the entry point for
// callers — the workload suites, benchmarks, and the service codec —
// that already hold a model.Definition.
func FromDefinition(def *model.Definition) *Problem {
	return &Problem{def: def}
}

// Definition returns the problem's underlying definition. The returned
// value is shared with the Problem, so treat it as read-only; use
// Definition().Clone() before mutating.
func (p *Problem) Definition() *model.Definition { return p.def }

// Name returns the problem's label.
func (p *Problem) Name() string { return p.def.Name }

// AddParam declares a tunable parameter. Values may be any mix of Go
// integers, floats, bools and strings.
func (p *Problem) AddParam(name string, values ...any) *Problem {
	if p.err != nil {
		return p
	}
	if len(values) == 0 {
		p.err = fmt.Errorf("searchspace: parameter %q needs at least one value", name)
		return p
	}
	vals := make([]value.Value, len(values))
	for i, v := range values {
		vv, err := toValue(v)
		if err != nil {
			p.err = fmt.Errorf("searchspace: parameter %q: %w", name, err)
			return p
		}
		vals[i] = vv
	}
	p.def.Params = append(p.def.Params, model.Param{Name: name, Values: vals})
	return p
}

// AddParamInts declares an integer parameter from a slice.
func (p *Problem) AddParamInts(name string, values []int) *Problem {
	anyVals := make([]any, len(values))
	for i, v := range values {
		anyVals[i] = v
	}
	return p.AddParam(name, anyVals...)
}

// AddConstraint registers a constraint written in the Python expression
// subset (e.g. "32 <= block_size_x * block_size_y <= 1024").
func (p *Problem) AddConstraint(src string) *Problem {
	if p.err != nil {
		return p
	}
	p.def.Constraints = append(p.def.Constraints, src)
	return p
}

// AddConstraintFunc registers a native Go predicate over the named
// parameters; args arrive in the order of vars as int64/float64/bool/
// string.
func (p *Problem) AddConstraintFunc(vars []string, fn func(args []any) bool) *Problem {
	if p.err != nil {
		return p
	}
	if fn == nil {
		p.err = fmt.Errorf("searchspace: nil constraint function")
		return p
	}
	varsCopy := append([]string(nil), vars...)
	p.def.GoConstraints = append(p.def.GoConstraints, model.GoConstraint{
		Vars: varsCopy,
		Fn: func(vals []value.Value) bool {
			args := make([]any, len(vals))
			for i, v := range vals {
				args[i] = v.Native()
			}
			return fn(args)
		},
	})
	return p
}

// CartesianSize returns the unconstrained configuration count.
func (p *Problem) CartesianSize() float64 { return p.def.CartesianSize() }

// BuildStats reports how a construction run went.
type BuildStats struct {
	Method   Method
	Duration time.Duration
	// Cartesian is the unconstrained size; Valid the resolved size.
	Cartesian float64
	Valid     int
}

// Build resolves the search space with the chosen method.
func (p *Problem) Build(m Method) (*SearchSpace, error) {
	ss, _, err := p.BuildTimed(m)
	return ss, err
}

// BuildParallel resolves the search space with the optimized solver using
// up to workers goroutines (0 selects GOMAXPROCS). The search is
// partitioned along the first solve-order variable's domain; the result is
// identical to Build(Optimized), including configuration order.
func (p *Problem) BuildParallel(workers int) (*SearchSpace, BuildStats, error) {
	stats := BuildStats{Method: Optimized, Cartesian: p.def.CartesianSize()}
	if p.err != nil {
		return nil, stats, p.err
	}
	if err := p.def.Validate(); err != nil {
		return nil, stats, err
	}
	prob, err := p.def.ToProblem()
	if err != nil {
		return nil, stats, err
	}
	start := time.Now()
	col := prob.Compile(core.DefaultOptions()).SolveColumnarParallel(workers)
	stats.Duration = time.Since(start)
	sp, err := space.FromColumnar(p.def, col)
	if err != nil {
		return nil, stats, err
	}
	stats.Valid = sp.Size()
	return &SearchSpace{s: sp, def: p.def}, stats, nil
}

// BuildTimed resolves the search space and reports timing, the
// measurement primitive behind every figure in the evaluation.
func (p *Problem) BuildTimed(m Method) (*SearchSpace, BuildStats, error) {
	return p.BuildTimedStop(m, nil)
}

// ErrCanceled reports a construction abandoned because its stop
// function fired.
var ErrCanceled = errors.New("searchspace: construction canceled")

// BuildTimedStop is BuildTimed with cooperative cancellation: stop is
// polled periodically during construction and a true return abandons
// the build with ErrCanceled. Mid-build cancellation points exist for
// the optimized solver (the service's default method) and the
// brute-force baseline (the most expensive one); the remaining
// baselines check stop only before starting, since their value is
// faithfully reproducing the paper's unoptimized construction loops
// and the service admission-bounds their input size. A nil stop never
// cancels.
func (p *Problem) BuildTimedStop(m Method, stop func() bool) (*SearchSpace, BuildStats, error) {
	stats := BuildStats{Method: m, Cartesian: p.def.CartesianSize()}
	if p.err != nil {
		return nil, stats, p.err
	}
	if err := p.def.Validate(); err != nil {
		return nil, stats, err
	}
	start := time.Now()
	col, err := construct(p.def, m, stop)
	stats.Duration = time.Since(start)
	if err != nil {
		return nil, stats, err
	}
	// A stop firing after construct completed is ignored: the expensive
	// work is done, so publishing the result beats discarding it.
	sp, err := space.FromColumnar(p.def, col)
	if err != nil {
		return nil, stats, err
	}
	stats.Valid = sp.Size()
	return &SearchSpace{s: sp, def: p.def}, stats, nil
}

// construct dispatches to the selected construction backend; all return
// the same columnar format.
func construct(def *model.Definition, m Method, stop func() bool) (*core.Columnar, error) {
	if stop != nil && stop() {
		return nil, ErrCanceled
	}
	switch m {
	case Optimized:
		prob, err := def.ToProblem()
		if err != nil {
			return nil, err
		}
		col, canceled := prob.Compile(core.DefaultOptions()).SolveColumnarStop(stop)
		if canceled {
			return nil, ErrCanceled
		}
		return col, nil
	case Original:
		return naive.Solve(def)
	case BruteForce:
		col, _, err := bruteforce.SolveStop(def, stop)
		if errors.Is(err, bruteforce.ErrCanceled) {
			return nil, ErrCanceled
		}
		return col, err
	case ChainOfTrees:
		chain, err := chaintrees.Build(def, chaintrees.ModeCompiled)
		if err != nil {
			return nil, err
		}
		return chain.ToColumnar(), nil
	case ChainOfTreesInterpreted:
		chain, err := chaintrees.Build(def, chaintrees.ModeInterpreted)
		if err != nil {
			return nil, err
		}
		return chain.ToColumnar(), nil
	case IterativeSAT:
		col, _, err := itersolve.Solve(def)
		return col, err
	}
	return nil, fmt.Errorf("searchspace: unknown method %v", m)
}

func toValue(v any) (value.Value, error) {
	switch v.(type) {
	case int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64,
		float32, float64, bool, string:
		return value.Of(v), nil
	}
	return value.Value{}, fmt.Errorf("unsupported value type %T", v)
}
