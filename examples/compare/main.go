// Compare: build the same search space with every construction method the
// paper evaluates — the optimized CSP solver, the original unoptimized
// solver, brute force, chain-of-trees in both ATF-like variants, and
// blocking-clause enumeration — and verify they agree while timing each.
//
// Run with: go run ./examples/compare
package main

import (
	"fmt"
	"log"

	"searchspace"
)

func build() *searchspace.Problem {
	// The ExpDist-style space: large enough for the methods to separate,
	// small enough for every method (including blocking clauses) to
	// finish in seconds.
	p := searchspace.NewProblem("compare")
	p.AddParam("block_size_x", 32, 64, 96, 128, 160, 192, 224, 256)
	p.AddParam("block_size_y", 1, 2, 4, 8)
	p.AddParam("tile_size_x", 1, 2, 3, 4, 5, 6, 7, 8)
	p.AddParam("tile_size_y", 1, 2, 3, 4, 5, 6, 7, 8)
	p.AddParam("loop_unroll_x", 1, 2, 4, 8)
	p.AddConstraint("64 <= block_size_x * block_size_y <= 512")
	p.AddConstraint("tile_size_x % loop_unroll_x == 0")
	p.AddConstraint("tile_size_x * tile_size_y <= 32")
	return p
}

func main() {
	var reference int
	for _, m := range searchspace.Methods() {
		ss, stats, err := build().BuildTimed(m)
		if err != nil {
			log.Fatal(err)
		}
		if reference == 0 {
			reference = ss.Size()
		}
		agree := "agrees"
		if ss.Size() != reference {
			agree = fmt.Sprintf("MISMATCH (want %d)", reference)
		}
		fmt.Printf("%-28s %8d configurations in %12v  %s\n", m, ss.Size(), stats.Duration, agree)
	}
}
