// Parallel: construct the Hotspot search space sequentially and with the
// goroutine-parallel solver, verify the results agree row for row, and
// report the speedup. Parallel all-solutions solving is the Go analogue
// of python-constraint 2's ParallelSolver, which emerged from the same
// optimization effort the paper describes.
//
// Run with: go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"runtime"

	"searchspace"
	"searchspace/internal/workloads"
)

func problem() *searchspace.Problem {
	def := workloads.Hotspot()
	p := searchspace.NewProblem(def.Name)
	for _, prm := range def.Params {
		vals := make([]any, len(prm.Values))
		for i, v := range prm.Values {
			vals[i] = v.Native()
		}
		p.AddParam(prm.Name, vals...)
	}
	for _, c := range def.Constraints {
		p.AddConstraint(c)
	}
	return p
}

func main() {
	seq, seqStats, err := problem().BuildTimed(searchspace.Optimized)
	if err != nil {
		log.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	par, parStats, err := problem().BuildParallel(workers)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sequential: %d configurations in %v\n", seq.Size(), seqStats.Duration)
	fmt.Printf("parallel:   %d configurations in %v (%d workers, %.1fx speedup)\n",
		par.Size(), parStats.Duration, workers,
		seqStats.Duration.Seconds()/parStats.Duration.Seconds())
	if workers == 1 {
		fmt.Println("(single-CPU machine: no parallelism available, expect ~1x)")
	}

	if seq.Size() != par.Size() {
		log.Fatalf("size mismatch: %d vs %d", seq.Size(), par.Size())
	}
	// Row order must be identical.
	for _, r := range []int{0, seq.Size() / 2, seq.Size() - 1} {
		a, b := seq.GetValues(r), par.GetValues(r)
		for i := range a {
			if a[i] != b[i] {
				log.Fatalf("row %d differs: %v vs %v", r, a, b)
			}
		}
	}
	fmt.Println("row-for-row identical output verified")
}
