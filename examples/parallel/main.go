// Parallel: construct the Hotspot search space sequentially and with
// the work-stealing parallel engine via the BuildOpts API, verify the
// results agree row for row, and report the speedup. The engine splits
// the search tree along the first k solve-order variables into a
// shared task queue, so parallelism is not bounded by one domain's
// size and the output is byte-identical to sequential at any worker
// count.
//
// Run with: go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync/atomic"

	"searchspace"
	"searchspace/internal/workloads"
)

func problem() *searchspace.Problem {
	def := workloads.Hotspot()
	p := searchspace.NewProblem(def.Name)
	for _, prm := range def.Params {
		vals := make([]any, len(prm.Values))
		for i, v := range prm.Values {
			vals[i] = v.Native()
		}
		p.AddParam(prm.Name, vals...)
	}
	for _, c := range def.Constraints {
		p.AddConstraint(c)
	}
	return p
}

func main() {
	seq, seqStats, err := problem().BuildWith(searchspace.BuildOpts{
		Method:  searchspace.Optimized,
		Workers: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	var tasks atomic.Int64
	par, parStats, err := problem().BuildWith(searchspace.BuildOpts{
		Method:  searchspace.Optimized,
		Workers: 0, // GOMAXPROCS
		OnProgress: func(done, total int) {
			tasks.Store(int64(total))
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sequential: %d configurations in %v\n", seq.Size(), seqStats.Duration)
	fmt.Printf("parallel:   %d configurations in %v (%d workers, %d scheduler tasks, %.1fx speedup)\n",
		par.Size(), parStats.Duration, parStats.Workers, tasks.Load(),
		seqStats.Duration.Seconds()/parStats.Duration.Seconds())
	if runtime.NumCPU() == 1 {
		fmt.Println("(single-CPU machine: no parallelism available, expect ~1x)")
	}

	if seq.Size() != par.Size() {
		log.Fatalf("size mismatch: %d vs %d", seq.Size(), par.Size())
	}
	// Row order must be identical — the determinism contract.
	for _, r := range []int{0, seq.Size() / 2, seq.Size() - 1} {
		a, b := seq.GetValues(r), par.GetValues(r)
		for i := range a {
			if a[i] != b[i] {
				log.Fatalf("row %d differs: %v vs %v", r, a, b)
			}
		}
	}
	fmt.Println("row-for-row identical output verified")
}
