// Hotspot: the paper's running example end to end — the full 11-parameter
// BAT Hotspot search space (22.2M candidates, 5 constraints), built with
// the optimized solver, then auto-tuned with random sampling and a
// genetic algorithm against a simulated kernel.
//
// Run with: go run ./examples/hotspot
package main

import (
	"fmt"
	"log"
	"math/rand"

	"searchspace"
	"searchspace/internal/core"
	"searchspace/internal/space"
	"searchspace/internal/tuner"
	"searchspace/internal/workloads"
)

func main() {
	def := workloads.Hotspot()

	// Declare through the public API (values converted from the workload
	// definition).
	p := searchspace.NewProblem(def.Name)
	for _, prm := range def.Params {
		vals := make([]any, len(prm.Values))
		for i, v := range prm.Values {
			vals[i] = v.Native()
		}
		p.AddParam(prm.Name, vals...)
	}
	for _, c := range def.Constraints {
		p.AddConstraint(c)
	}

	ss, stats, err := p.BuildTimed(searchspace.Optimized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hotspot: %d valid of %.0f candidates (%.2f%%), constructed in %v\n",
		ss.Size(), stats.Cartesian, 100*float64(ss.Size())/stats.Cartesian, stats.Duration)

	// Neighbor queries back the genetic algorithm's mutation step (§4.4).
	rng := rand.New(rand.NewSource(7))
	row := ss.SampleUniform(rng, 1)[0]
	fmt.Printf("configuration %v has %d Hamming neighbors and %d adjacent neighbors\n",
		ss.Get(row), len(ss.HammingNeighbors(row)), len(ss.AdjacentNeighbors(row)))

	// Tune against a simulated kernel: the internal space representation
	// backs both the public API and the tuner.
	prob, err := def.ToProblem()
	if err != nil {
		log.Fatal(err)
	}
	col := prob.Compile(core.DefaultOptions()).SolveColumnar()
	sp, err := space.FromColumnar(def, col)
	if err != nil {
		log.Fatal(err)
	}
	kernel := tuner.NewSimKernel(def, 1, 5, 1000)
	obj := tuner.Objective{
		Score: func(r int) float64 { return kernel.Score(sp.Row(r)) },
		Cost:  func(r int) float64 { return kernel.TimeMs(sp.Row(r)) / 1000 },
	}
	budget := tuner.Budget{MaxEvals: 500}
	for _, s := range []tuner.Strategy{
		tuner.RandomSampling{},
		tuner.GeneticAlgorithm{Crossover: true},
		tuner.GreedyILS{},
	} {
		res := s.Run(rand.New(rand.NewSource(99)), sp, obj, budget)
		fmt.Printf("%-20s best score %.2f after %d evaluations (best config %v)\n",
			s.Name(), res.BestScore, res.Evaluations, sp.RowMap(res.BestRow))
	}
}
