// GEMM: build the CLBlast GEMM search space (17 parameters, 8
// divisibility/memory constraints) and use Latin Hypercube Sampling over
// the resolved space to seed a simulated-annealing tuning run — the
// stratified-sampling workflow that §4.4 argues requires a fully
// resolved search space.
//
// Run with: go run ./examples/gemm
package main

import (
	"fmt"
	"log"
	"math/rand"

	"searchspace"
	"searchspace/internal/core"
	"searchspace/internal/space"
	"searchspace/internal/tuner"
	"searchspace/internal/workloads"
)

func main() {
	def := workloads.GEMM()
	p := searchspace.NewProblem(def.Name)
	for _, prm := range def.Params {
		vals := make([]any, len(prm.Values))
		for i, v := range prm.Values {
			vals[i] = v.Native()
		}
		p.AddParam(prm.Name, vals...)
	}
	for _, c := range def.Constraints {
		p.AddConstraint(c)
	}
	ss, stats, err := p.BuildTimed(searchspace.Optimized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GEMM: %d valid of %.0f candidates, constructed in %v\n",
		ss.Size(), stats.Cartesian, stats.Duration)

	// LHS over the valid marginals spreads the initial sample across the
	// space far more evenly than uniform sampling.
	rng := rand.New(rand.NewSource(3))
	fmt.Println("Latin Hypercube sample of 5 configurations:")
	for _, row := range ss.SampleLHS(rng, 5) {
		cfg := ss.Get(row)
		fmt.Printf("  MWG=%v NWG=%v KWG=%v MDIMC=%v NDIMC=%v VWM=%v SA=%v SB=%v\n",
			cfg["MWG"], cfg["NWG"], cfg["KWG"], cfg["MDIMC"], cfg["NDIMC"],
			cfg["VWM"], cfg["SA"], cfg["SB"])
	}

	// Tune with simulated annealing against a simulated GEMM kernel.
	prob, err := def.ToProblem()
	if err != nil {
		log.Fatal(err)
	}
	sp, err := space.FromColumnar(def, prob.Compile(core.DefaultOptions()).SolveColumnar())
	if err != nil {
		log.Fatal(err)
	}
	kernel := tuner.NewSimKernel(def, 5, 2, 4096)
	obj := tuner.Objective{
		Score: func(r int) float64 { return kernel.Score(sp.Row(r)) },
		Cost:  func(r int) float64 { return kernel.TimeMs(sp.Row(r)) / 1000 },
	}
	res := tuner.SimulatedAnnealing{}.Run(rng, sp, obj, tuner.Budget{MaxEvals: 800})
	fmt.Printf("simulated annealing: best %.1f GFLOP/s-proxy after %d evaluations\n",
		res.BestScore, res.Evaluations)
	fmt.Printf("best configuration: %v\n", sp.RowMap(res.BestRow))
}
