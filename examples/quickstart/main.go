// Quickstart: declare two tunable parameters and the thread-block
// constraint from the paper's §2 running example, build the search space
// with the optimized CSP solver, and poke at the result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"searchspace"
)

func main() {
	p := searchspace.NewProblem("quickstart")

	// Thread block dimensions of a GPU kernel (Listing 3 of the paper).
	xs := []int{1, 2, 4, 8, 16}
	for i := 1; i <= 32; i++ {
		xs = append(xs, 32*i)
	}
	p.AddParamInts("block_size_x", xs)
	p.AddParam("block_size_y", 1, 2, 4, 8, 16, 32)

	// At least one warp, at most the hardware's thread limit.
	p.AddConstraint("32 <= block_size_x * block_size_y <= 1024")

	ss, stats, err := p.BuildTimed(searchspace.Optimized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constructed %d of %.0f candidate configurations in %v\n",
		ss.Size(), stats.Cartesian, stats.Duration)

	// Membership is an O(1) lookup on the resolved space.
	fmt.Println("contains 32x2:", ss.Contains(searchspace.Config{
		"block_size_x": 32, "block_size_y": 2,
	}))
	fmt.Println("contains 1x1: ", ss.Contains(searchspace.Config{
		"block_size_x": 1, "block_size_y": 1,
	}))

	// True bounds are tighter than the declared domains once constraints
	// have been applied.
	for _, b := range ss.TrueBounds() {
		fmt.Printf("%-14s spans [%g, %g] over %d values\n", b.Name, b.Min, b.Max, b.DistinctValues)
	}

	// Draw a reproducible sample.
	rng := rand.New(rand.NewSource(42))
	fmt.Println("five random valid configurations:")
	for _, row := range ss.SampleUniform(rng, 5) {
		fmt.Printf("  %v\n", ss.Get(row))
	}
}
